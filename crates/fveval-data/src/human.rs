//! NL2SVA-Human: expert-written testbenches and their 79 assertion
//! specifications (Table 6 of the paper: 4×1R1W FIFO, 1×multi-port
//! FIFO, 4×arbiter, 2×FSM, 1×counter, 1×RAM).

use fv_core::SignalTable;
use sv_parser::parse_source;
use sv_synth::elaborate;

/// One testbench variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Testbench {
    /// Short name (also the case-id prefix).
    pub name: &'static str,
    /// Design class for Table 6 grouping.
    pub class: &'static str,
    /// Top module name inside `source`.
    pub top: &'static str,
    /// Full SystemVerilog source.
    pub source: &'static str,
}

/// One NL-specification-to-assertion test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HumanCase {
    /// Unique id, e.g. `fifo_1r1w_3`.
    pub id: String,
    /// Name of the owning testbench scope (a shipped [`Testbench`]
    /// name, or a generated scenario id for `fveval-gen` task sets).
    pub testbench: String,
    /// The natural-language specification shown to the model.
    pub question: String,
    /// The expert-written reference assertion (concrete SVA).
    pub reference: String,
    /// The OP-Tree mutation operator tag (`opswap`, `offbyone`, ...)
    /// when the case's reference was derived by the `fveval-gen`
    /// mutation layer; `None` for shipped and family-authored cases.
    pub mutation: Option<String>,
}

/// All 13 testbench variants.
pub fn testbenches() -> Vec<Testbench> {
    vec![
        Testbench {
            name: "fifo_1r1w",
            class: "1R1W FIFO",
            top: "fifo_1r1w_tb",
            source: include_str!("../testbenches/fifo_1r1w.sv"),
        },
        Testbench {
            name: "fifo_1r1w_bypass",
            class: "1R1W FIFO",
            top: "fifo_1r1w_bypass_tb",
            source: include_str!("../testbenches/fifo_1r1w_bypass.sv"),
        },
        Testbench {
            name: "fifo_1r1w_depth8",
            class: "1R1W FIFO",
            top: "fifo_1r1w_depth8_tb",
            source: include_str!("../testbenches/fifo_1r1w_depth8.sv"),
        },
        Testbench {
            name: "fifo_1r1w_wide",
            class: "1R1W FIFO",
            top: "fifo_1r1w_wide_tb",
            source: include_str!("../testbenches/fifo_1r1w_wide.sv"),
        },
        Testbench {
            name: "fifo_multiport",
            class: "Multi-Port FIFO",
            top: "fifo_multiport_tb",
            source: include_str!("../testbenches/fifo_multiport.sv"),
        },
        Testbench {
            name: "arbiter_rr",
            class: "Arbiter",
            top: "arbiter_rr_tb",
            source: include_str!("../testbenches/arbiter_rr.sv"),
        },
        Testbench {
            name: "arbiter_fixed",
            class: "Arbiter",
            top: "arbiter_fixed_tb",
            source: include_str!("../testbenches/arbiter_fixed.sv"),
        },
        Testbench {
            name: "arbiter_reverse_priority",
            class: "Arbiter",
            top: "arbiter_reverse_priority_tb",
            source: include_str!("../testbenches/arbiter_reverse_priority.sv"),
        },
        Testbench {
            name: "arbiter_weighted",
            class: "Arbiter",
            top: "arbiter_weighted_tb",
            source: include_str!("../testbenches/arbiter_weighted.sv"),
        },
        Testbench {
            name: "fsm_handshake",
            class: "FSM",
            top: "fsm_handshake_tb",
            source: include_str!("../testbenches/fsm_handshake.sv"),
        },
        Testbench {
            name: "fsm_sequence",
            class: "FSM",
            top: "fsm_sequence_tb",
            source: include_str!("../testbenches/fsm_sequence.sv"),
        },
        Testbench {
            name: "counter",
            class: "Counter",
            top: "counter_tb",
            source: include_str!("../testbenches/counter.sv"),
        },
        Testbench {
            name: "ram_1r1w",
            class: "RAM",
            top: "ram_1r1w_tb",
            source: include_str!("../testbenches/ram_1r1w.sv"),
        },
    ]
}

/// Finds a testbench by name.
pub fn testbench(name: &str) -> Option<Testbench> {
    testbenches().into_iter().find(|t| t.name == name)
}

/// Builds the assertion-visible signal table of a testbench by
/// elaborating it with the repository's own front-end: every net
/// becomes a signal, every top parameter a named constant.
///
/// # Errors
///
/// Returns the elaboration error message if the testbench source does
/// not elaborate (covered by tests — all shipped testbenches do).
pub fn signal_table_for(tb: &Testbench) -> Result<SignalTable, String> {
    let file = parse_source(tb.source).map_err(|e| e.to_string())?;
    let netlist = elaborate(&file, tb.top).map_err(|e| e.to_string())?;
    let mut table = SignalTable::new();
    for (name, binding) in netlist.net_names() {
        // Array elements (`mem[0]`) are not directly nameable in SVA.
        if !name.contains('[') && !name.contains('.') {
            table.insert(name.to_string(), binding.width);
        }
    }
    for (name, value) in &netlist.params {
        table.insert_const(name.clone(), 32, *value);
    }
    Ok(table)
}

fn case(id: &str, testbench: &str, question: &str, reference: &str) -> HumanCase {
    HumanCase {
        id: id.to_string(),
        testbench: testbench.to_string(),
        question: format!("Create a SVA assertion that checks: {question}"),
        reference: reference.to_string(),
        mutation: None,
    }
}

/// The full 79-case NL2SVA-Human dataset.
#[allow(clippy::vec_init_then_push)] // one push per dataset case, in paper order
pub fn human_cases() -> Vec<HumanCase> {
    let mut v = Vec::with_capacity(79);
    // ---- fifo_1r1w (5) — the paper's appendix set, verbatim. ----
    v.push(case(
        "fifo_1r1w_0",
        "fifo_1r1w",
        "that the FIFO does not underflow, assuming no bypass. Use the signals 'rd_pop' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_1",
        "fifo_1r1w",
        "that the FIFO does not overflow, assuming no bypass. Use the signals 'wr_push' and 'fifo_full'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && wr_push) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_2",
        "fifo_1r1w",
        "that the fifo output and read data are consistent, assuming no bypass. Use the signals 'rd_pop', 'rd_data', and 'fifo_out_data'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (rd_pop && (fifo_out_data != rd_data)) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_3",
        "fifo_1r1w",
        "that when response is pending, data is eventually popped from the FIFO. Use the signals 'rd_pop' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) !fifo_empty |-> strong(##[0:$] rd_pop));",
    ));
    v.push(case(
        "fifo_1r1w_4",
        "fifo_1r1w",
        "that when there is a write push to the FIFO, data is eventually popped. Use the signals 'rd_pop' and 'wr_push'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));",
    ));
    // ---- fifo_1r1w_bypass (5) ----
    v.push(case(
        "fifo_1r1w_bypass_0",
        "fifo_1r1w_bypass",
        "that the FIFO does not underflow except on a bypass. Use the signals 'rd_pop', 'fifo_empty', and 'bypass'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop && !bypass) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_bypass_1",
        "fifo_1r1w_bypass",
        "that the FIFO does not overflow. Use the signals 'wr_push' and 'fifo_full'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && wr_push) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_bypass_2",
        "fifo_1r1w_bypass",
        "that on a bypass the read data equals the write data. Use the signals 'bypass', 'rd_data', and 'wr_data'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (bypass && (rd_data != wr_data)) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_bypass_3",
        "fifo_1r1w_bypass",
        "that a bypass only happens while the FIFO is empty. Use the signals 'bypass' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (bypass && !fifo_empty) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_bypass_4",
        "fifo_1r1w_bypass",
        "that when there is a write push to the FIFO, data is eventually popped. Use the signals 'rd_pop' and 'wr_push'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));",
    ));
    // ---- fifo_1r1w_depth8 (5) ----
    v.push(case(
        "fifo_1r1w_depth8_0",
        "fifo_1r1w_depth8",
        "that the FIFO does not underflow. Use the signals 'rd_pop' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_depth8_1",
        "fifo_1r1w_depth8",
        "that the FIFO does not overflow. Use the signals 'wr_push' and 'fifo_full'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && wr_push) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_depth8_2",
        "fifo_1r1w_depth8",
        "that the FIFO is never simultaneously full and empty. Use the signals 'fifo_full' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && fifo_empty) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_depth8_3",
        "fifo_1r1w_depth8",
        "that a push into an empty FIFO without a simultaneous pop deasserts empty on the next cycle. Use the signals 'wr_push', 'rd_pop', and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (wr_push && fifo_empty && !rd_pop) |=> !fifo_empty);",
    ));
    v.push(case(
        "fifo_1r1w_depth8_4",
        "fifo_1r1w_depth8",
        "that the occupancy count holds its value when there is no push and no pop. Use the signals 'wr_push', 'rd_pop', and 'fifo_count'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!wr_push && !rd_pop) |=> $stable(fifo_count));",
    ));
    // ---- fifo_1r1w_wide (5) ----
    v.push(case(
        "fifo_1r1w_wide_0",
        "fifo_1r1w_wide",
        "that the fifo output and read data are consistent. Use the signals 'rd_pop', 'rd_data', and 'fifo_out_data'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (rd_pop && (fifo_out_data != rd_data)) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_wide_1",
        "fifo_1r1w_wide",
        "that the FIFO does not underflow. Use the signals 'rd_pop' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_wide_2",
        "fifo_1r1w_wide",
        "that the FIFO does not overflow. Use the signals 'wr_push' and 'fifo_full'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && wr_push) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_wide_3",
        "fifo_1r1w_wide",
        "that the FIFO is never simultaneously full and empty. Use the signals 'fifo_full' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && fifo_empty) !== 1'b1);",
    ));
    v.push(case(
        "fifo_1r1w_wide_4",
        "fifo_1r1w_wide",
        "that the read pointer holds its value when there is no push and no pop. Use the signals 'wr_push', 'rd_pop', and 'fifo_rd_ptr'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!wr_push && !rd_pop) |=> $stable(fifo_rd_ptr));",
    ));
    // ---- fifo_multiport (6) ----
    v.push(case(
        "fifo_multiport_0",
        "fifo_multiport",
        "that the FIFO does not underflow. Use the signals 'rd_pop' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop) !== 1'b1);",
    ));
    v.push(case(
        "fifo_multiport_1",
        "fifo_multiport",
        "that no write port pushes while the FIFO is full. Use the signals 'wr_push0', 'wr_push1', and 'fifo_full'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_full && (wr_push0 || wr_push1)) !== 1'b1);",
    ));
    v.push(case(
        "fifo_multiport_2",
        "fifo_multiport",
        "that both write ports never push together when the FIFO is almost full. Use the signals 'wr_push0', 'wr_push1', and 'fifo_almost_full'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_almost_full && wr_push0 && wr_push1) !== 1'b1);",
    ));
    v.push(case(
        "fifo_multiport_3",
        "fifo_multiport",
        "that the occupancy count holds when there are no pushes and no pop. Use the signals 'push_count', 'rd_pop', and 'fifo_count'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) ((push_count == 'd0) && !rd_pop) |=> $stable(fifo_count));",
    ));
    v.push(case(
        "fifo_multiport_4",
        "fifo_multiport",
        "that when the FIFO is not empty, data is eventually popped. Use the signals 'rd_pop' and 'fifo_empty'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) !fifo_empty |-> strong(##[0:$] rd_pop));",
    ));
    v.push(case(
        "fifo_multiport_5",
        "fifo_multiport",
        "that a push on either write port is eventually followed by a pop. Use the signals 'wr_push0', 'wr_push1', and 'rd_pop'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (wr_push0 || wr_push1) |-> strong(##[0:$] rd_pop));",
    ));
    // ---- arbiter_rr (9) ----
    v.push(case(
        "arbiter_rr_0",
        "arbiter_rr",
        "whether starvation occurs, i.e. check that each request from client is eventually granted. Use the signals 'busy', 'tb_req', and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!busy && |tb_req && (tb_gnt == 'd0)) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_rr_1",
        "arbiter_rr",
        "that at most one grant is active at a time. Use the signal 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) $onehot0(tb_gnt));",
    ));
    v.push(case(
        "arbiter_rr_2",
        "arbiter_rr",
        "that any grant goes to a requesting client. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) |tb_gnt |-> ((tb_gnt & tb_req) != 'd0));",
    ));
    v.push(case(
        "arbiter_rr_3",
        "arbiter_rr",
        "that no grant is issued while the arbiter is busy. Use the signals 'busy' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (busy && (tb_gnt != 'd0)) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_rr_4",
        "arbiter_rr",
        "that a request from client 0 is eventually granted. Use the signals 'tb_req' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) tb_req[0] |-> strong(##[0:$] tb_gnt[0]));",
    ));
    v.push(case(
        "arbiter_rr_5",
        "arbiter_rr",
        "that the grant vector stays stable on the cycle after hold is asserted with an active grant. Use the signals 'hold' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (hold && |tb_gnt) |=> $stable(tb_gnt));",
    ));
    v.push(case(
        "arbiter_rr_6",
        "arbiter_rr",
        "that with no requests pending there is no grant on the next cycle. Use the signals 'tb_req' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_req == 'd0) |=> (tb_gnt == 'd0));",
    ));
    v.push(case(
        "arbiter_rr_7",
        "arbiter_rr",
        "that the grant vector does not change during a continued grant. Use the signals 'cont_gnt' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) cont_gnt |-> $stable(tb_gnt));",
    ));
    v.push(case(
        "arbiter_rr_8",
        "arbiter_rr",
        "that the arbiter is never on hold or busy or on continued grant at the same time. Use the signals 'busy', 'hold', and 'cont_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) !$onehot0({hold,busy,cont_gnt}) !== 1'b1);",
    ));
    // ---- arbiter_fixed (9) ----
    v.push(case(
        "arbiter_fixed_0",
        "arbiter_fixed",
        "that the highest-priority request (index 0) is granted when the arbiter is not busy. Use the signals 'tb_req', 'busy', and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_req[0] && !busy) |-> tb_gnt[0]);",
    ));
    v.push(case(
        "arbiter_fixed_1",
        "arbiter_fixed",
        "that client 1 is never granted while client 0 requests. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[1] && tb_req[0]) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_fixed_2",
        "arbiter_fixed",
        "that client 2 is never granted while a higher-priority client requests. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[2] && (tb_req[0] || tb_req[1])) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_fixed_3",
        "arbiter_fixed",
        "that client 3 is never granted while any higher-priority client requests. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[3] && (tb_req[0] || tb_req[1] || tb_req[2])) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_fixed_4",
        "arbiter_fixed",
        "that at most one grant is active at a time. Use the signal 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) $onehot0(tb_gnt));",
    ));
    v.push(case(
        "arbiter_fixed_5",
        "arbiter_fixed",
        "that grants are only given to requesting clients. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) ((tb_gnt & ~tb_req) != 'd0) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_fixed_6",
        "arbiter_fixed",
        "that when the arbiter is not busy the grant matches the fixed-priority model. Use the signals 'busy', 'tb_gnt', and 'expected_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) !busy |-> (tb_gnt == expected_gnt));",
    ));
    v.push(case(
        "arbiter_fixed_7",
        "arbiter_fixed",
        "that there is no grant when nothing is requested. Use the signals 'tb_req' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!(|tb_req) && (tb_gnt != 'd0)) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_fixed_8",
        "arbiter_fixed",
        "that a pending request with the arbiter idle leads to some grant eventually. Use the signals 'any_req', 'busy', and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (any_req && !busy) |-> strong(##[0:$] |tb_gnt));",
    ));
    // ---- arbiter_reverse_priority (10) ----
    v.push(case(
        "arbiter_reverse_priority_0",
        "arbiter_reverse_priority",
        "that the highest-index request is granted when the arbiter is not busy. Use the signals 'tb_req', 'busy', and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_req[3] && !busy) |-> tb_gnt[3]);",
    ));
    v.push(case(
        "arbiter_reverse_priority_1",
        "arbiter_reverse_priority",
        "that client 2 is never granted while client 3 requests. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[2] && tb_req[3]) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_reverse_priority_2",
        "arbiter_reverse_priority",
        "that client 1 is never granted while a higher-index client requests. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[1] && (tb_req[2] || tb_req[3])) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_reverse_priority_3",
        "arbiter_reverse_priority",
        "that client 0 is never granted while any higher-index client requests. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[0] && (tb_req[1] || tb_req[2] || tb_req[3])) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_reverse_priority_4",
        "arbiter_reverse_priority",
        "that at most one grant is active at a time. Use the signal 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) $onehot0(tb_gnt));",
    ));
    v.push(case(
        "arbiter_reverse_priority_5",
        "arbiter_reverse_priority",
        "that grants are only given to requesting clients. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) ((tb_gnt & ~tb_req) != 'd0) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_reverse_priority_6",
        "arbiter_reverse_priority",
        "that when the arbiter is not busy the grant matches the reverse-priority model. Use the signals 'busy', 'tb_gnt', and 'expected_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) !busy |-> (tb_gnt == expected_gnt));",
    ));
    v.push(case(
        "arbiter_reverse_priority_7",
        "arbiter_reverse_priority",
        "that the grant vector stays stable on the cycle after hold is asserted with an active grant. Use the signals 'hold' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (hold && |tb_gnt) |=> $stable(tb_gnt));",
    ));
    v.push(case(
        "arbiter_reverse_priority_8",
        "arbiter_reverse_priority",
        "that no grant is active while the arbiter is busy. Use the signals 'busy' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (busy && |tb_gnt) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_reverse_priority_9",
        "arbiter_reverse_priority",
        "that the arbiter is never on hold or busy or on continued grant at the same time. Use the signals 'busy', 'hold', and 'cont_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) !$onehot0({hold,busy,cont_gnt}) !== 1'b1);",
    ));
    // ---- arbiter_weighted (9) ----
    v.push(case(
        "arbiter_weighted_0",
        "arbiter_weighted",
        "that client 0 is never granted while it has no credit. Use the signals 'tb_gnt' and 'starved0'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[0] && starved0) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_weighted_1",
        "arbiter_weighted",
        "that client 1 is never granted while it has no credit. Use the signals 'tb_gnt' and 'starved1'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[1] && starved1) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_weighted_2",
        "arbiter_weighted",
        "that at most one grant is active at a time. Use the signal 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) $onehot0(tb_gnt));",
    ));
    v.push(case(
        "arbiter_weighted_3",
        "arbiter_weighted",
        "that client 0 is only granted while requesting. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[0] && !tb_req[0]) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_weighted_4",
        "arbiter_weighted",
        "that client 1 is only granted while requesting. Use the signals 'tb_gnt' and 'tb_req'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[1] && !tb_req[1]) !== 1'b1);",
    ));
    v.push(case(
        "arbiter_weighted_5",
        "arbiter_weighted",
        "that a grant to client 0 with remaining credit decrements its credit counter. Use the signals 'tb_gnt' and 'credit0'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (tb_gnt[0] && (credit0 != 'd0)) |=> (credit0 == $past(credit0) - 2'd1));",
    ));
    v.push(case(
        "arbiter_weighted_6",
        "arbiter_weighted",
        "that an idle client 0 below the credit cap refills one credit. Use the signals 'tb_gnt' and 'credit0'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!tb_gnt[0] && (credit0 != 2'd3)) |=> (credit0 == $past(credit0) + 2'd1));",
    ));
    v.push(case(
        "arbiter_weighted_7",
        "arbiter_weighted",
        "that a starved client 0 eventually regains credit. Use the signal 'starved0'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) starved0 |-> strong(##[0:$] !starved0));",
    ));
    v.push(case(
        "arbiter_weighted_8",
        "arbiter_weighted",
        "that no grant is issued while the arbiter is busy. Use the signals 'busy' and 'tb_gnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (busy && (tb_gnt != 'd0)) !== 1'b1);",
    ));
    // ---- fsm_handshake (2) ----
    v.push(case(
        "fsm_handshake_0",
        "fsm_handshake",
        "that a request in the IDLE state moves the FSM to BUSY on the next cycle. Use the signals 'state' and 'req_in'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (state == IDLE && req_in) |=> (state == BUSY));",
    ));
    v.push(case(
        "fsm_handshake_1",
        "fsm_handshake",
        "that the DONE state always returns to IDLE after one cycle. Use the signal 'state'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (state == DONE) |-> ##1 (state == IDLE));",
    ));
    // ---- fsm_sequence (2) ----
    v.push(case(
        "fsm_sequence_0",
        "fsm_sequence",
        "that a second consecutive high input bit is detected on the next cycle. Use the signals 'state', 'bit_in', and 'detected'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (state == S_ONE && bit_in) |=> detected);",
    ));
    v.push(case(
        "fsm_sequence_1",
        "fsm_sequence",
        "that a low input bit prevents the detect state on the next cycle. Use the signals 'bit_in' and 'state'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!bit_in) |=> (state != S_TWO));",
    ));
    // ---- counter (5) ----
    v.push(case(
        "counter_0",
        "counter",
        "that an enabled up-count without load increments the counter by one. Use the signals 'en', 'up_down', 'load', and 'cnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (en && up_down && !load) |=> (cnt == $past(cnt) + 'd1));",
    ));
    v.push(case(
        "counter_1",
        "counter",
        "that an enabled down-count without load decrements the counter by one. Use the signals 'en', 'up_down', 'load', and 'cnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (en && !up_down && !load) |=> (cnt == $past(cnt) - 'd1));",
    ));
    v.push(case(
        "counter_2",
        "counter",
        "that the counter holds its value when disabled and not loading. Use the signals 'en', 'load', and 'cnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!en && !load) |=> $stable(cnt));",
    ));
    v.push(case(
        "counter_3",
        "counter",
        "that a load sets the counter to the load value. Use the signals 'load', 'load_val', and 'cnt'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) load |=> (cnt == $past(load_val)));",
    ));
    v.push(case(
        "counter_4",
        "counter",
        "that the counter is never at its maximum and minimum at the same time. Use the signals 'at_max' and 'at_min'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (at_max && at_min) !== 1'b1);",
    ));
    // ---- ram_1r1w (7) ----
    v.push(case(
        "ram_1r1w_0",
        "ram_1r1w",
        "that a write to address 0 updates entry 0 with the written data on the next cycle. Use the signals 'wr_en', 'wr_addr', 'wr_data', and 'mem0'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (wr_en && (wr_addr == 'd0)) |=> (mem0 == $past(wr_data)));",
    ));
    v.push(case(
        "ram_1r1w_1",
        "ram_1r1w",
        "that entry 1 is stable unless written. Use the signals 'wr_en', 'wr_addr', and 'mem1'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!wr_en || (wr_addr != 'd1)) |=> $stable(mem1));",
    ));
    v.push(case(
        "ram_1r1w_2",
        "ram_1r1w",
        "that read data matches the memory model on a read. Use the signals 'rd_en', 'rd_data', and 'mem_rd_value'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (rd_en && (rd_data != mem_rd_value)) !== 1'b1);",
    ));
    v.push(case(
        "ram_1r1w_3",
        "ram_1r1w",
        "that the collision flag is exactly a same-address write and read in one cycle. Use the signals 'collision', 'wr_en', 'rd_en', 'wr_addr', and 'rd_addr'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) collision == (wr_en && rd_en && (wr_addr == rd_addr)));",
    ));
    v.push(case(
        "ram_1r1w_4",
        "ram_1r1w",
        "that the collision flag never fires without a write. Use the signals 'collision' and 'wr_en'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (collision && !wr_en) !== 1'b1);",
    ));
    v.push(case(
        "ram_1r1w_5",
        "ram_1r1w",
        "that a write to address 3 updates entry 3 with the written data on the next cycle. Use the signals 'wr_en', 'wr_addr', 'wr_data', and 'mem3'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (wr_en && (wr_addr == 'd3)) |=> (mem3 == $past(wr_data)));",
    ));
    v.push(case(
        "ram_1r1w_6",
        "ram_1r1w",
        "that all memory entries retain their data without a write. Use the signals 'wr_en', 'mem0', 'mem1', 'mem2', and 'mem3'.",
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) (!wr_en) |=> ($stable(mem0) && $stable(mem1) && $stable(mem2) && $stable(mem3)));",
    ));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_core::{check_equivalence, EquivConfig, Equivalence};
    use sv_parser::parse_assertion_str;

    #[test]
    fn dataset_counts_match_table6() {
        let cases = human_cases();
        assert_eq!(cases.len(), 79, "Table 6 total");
        let count = |class: &str| {
            let names: Vec<&str> = testbenches()
                .into_iter()
                .filter(|t| t.class == class)
                .map(|t| t.name)
                .collect();
            cases
                .iter()
                .filter(|c| names.contains(&c.testbench.as_str()))
                .count()
        };
        assert_eq!(count("1R1W FIFO"), 20);
        assert_eq!(count("Multi-Port FIFO"), 6);
        assert_eq!(count("Arbiter"), 37);
        assert_eq!(count("FSM"), 4);
        assert_eq!(count("Counter"), 5);
        assert_eq!(count("RAM"), 7);
        assert_eq!(testbenches().len(), 13, "Table 6 variations");
    }

    #[test]
    fn all_testbenches_elaborate() {
        for tb in testbenches() {
            let table = signal_table_for(&tb)
                .unwrap_or_else(|e| panic!("{} failed to elaborate: {e}", tb.name));
            assert!(!table.is_empty(), "{} has signals", tb.name);
        }
    }

    #[test]
    fn all_references_parse() {
        for c in human_cases() {
            parse_assertion_str(&c.reference).unwrap_or_else(|e| panic!("{}: {e}", c.id));
        }
    }

    #[test]
    fn all_references_are_self_equivalent() {
        // Compiling each reference against its testbench scope and
        // proving it equivalent to itself exercises the whole
        // equivalence pipeline over the real collateral.
        let tables: std::collections::HashMap<&str, _> = testbenches()
            .into_iter()
            .map(|t| (t.name, signal_table_for(&t).unwrap()))
            .collect();
        for c in human_cases() {
            let a = parse_assertion_str(&c.reference).unwrap();
            let out = check_equivalence(
                &a,
                &a,
                &tables[c.testbench.as_str()],
                EquivConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", c.id));
            assert_eq!(out.verdict, Equivalence::Equivalent, "{}", c.id);
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<String> = human_cases().into_iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
