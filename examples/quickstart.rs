//! Quickstart: parse two SVA assertions and formally compare them.
//!
//! Reproduces the paper's core measurement in a few lines: the custom
//! assertion-to-assertion equivalence check with full / partial
//! verdicts, including a distinguishing trace for mismatches.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fveval_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 7 FIFO example: reference uses a strong
    // eventuality; the candidate forgot `strong` and shifted the window.
    let reference = parse_assertion_str(
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
         wr_push |-> strong(##[0:$] rd_pop));",
    )?;
    let candidate = parse_assertion_str(
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
         wr_push |-> ##[1:$] rd_pop);",
    )?;

    // The testbench scope: signal names and widths.
    let table: SignalTable = [("wr_push", 1u32), ("rd_pop", 1), ("tb_reset", 1)]
        .into_iter()
        .collect();

    let out = check_equivalence(&reference, &candidate, &table, EquivConfig::default())?;
    println!("verdict  : {:?}", out.verdict);
    println!("horizon  : {} cycles", out.horizon);
    println!("func pass: {}", out.verdict.is_equivalent());
    println!("partial  : {}", out.verdict.is_partial());
    if let Some(cex) = &out.cex {
        println!("\na trace where exactly one assertion holds:\n{cex}");
    }

    // A genuinely equivalent rewrite scores a full functional pass.
    let rewrite = parse_assertion_str(
        "assert property (@(posedge clk) disable iff (tb_reset) \
         (wr_push) |-> strong(##[0:$] (rd_pop)));",
    )?;
    let out2 = check_equivalence(&reference, &rewrite, &table, EquivConfig::default())?;
    println!("\nrewritten candidate verdict: {:?}", out2.verdict);
    assert_eq!(out2.verdict, Equivalence::Equivalent);

    // And a hallucinated operator fails the tool syntax check outright.
    let hallucinated =
        parse_assertion_str("assert property (@(posedge clk) wr_push |-> eventually(rd_pop));");
    println!(
        "hallucinated `eventually`: {:?}",
        hallucinated.err().map(|e| e.to_string())
    );
    Ok(())
}
