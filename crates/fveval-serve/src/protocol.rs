//! The wire protocol: request/response payloads and their JSON forms.
//!
//! Endpoints (see `docs/SERVICE.md` for the full schemas):
//!
//! - `POST /v1/eval` — submit an [`EvalRequest`]; answers `{"job": N}`
//!   or `429` when the in-flight bound is reached;
//! - `GET /v1/jobs/<id>` — a [`JobView`] (status, queue position, and
//!   the [`EvalResult`] once done);
//! - `GET /v1/stats` — cache hit/miss/persisted-hit counters,
//!   `ProverStats` rollups, job counts, store state, uptime;
//! - `POST /v1/shutdown` — drain and stop the server.
//!
//! Every payload round-trips through [`crate::json`] exactly, so a
//! verdict computed on the server reconstructs bit-identically on the
//! client.

use crate::json::Json;
use fveval_core::{CaseEvals, SampleEval};
use fveval_llm::InferenceConfig;

/// What to evaluate: a named shipped task set, or an inline generated
/// suite (the `fveval-gen` families).
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSetRef {
    /// The shipped NL2SVA-Human set (79 cases, fixed).
    Human,
    /// The seeded NL2SVA-Machine set.
    Machine {
        /// Number of generated cases.
        count: usize,
        /// Generator seed.
        seed: u64,
    },
    /// An inline `fveval-gen` suite; mirrors
    /// [`fveval_data::SuiteConfig`].
    Suite {
        /// Families to generate (empty means all).
        families: Vec<String>,
        /// Scenarios per family.
        per_family: usize,
        /// Suite seed.
        seed: u64,
        /// Pins the family-size knob instead of sweeping it.
        depth: Option<u32>,
        /// Pins the data width instead of sweeping it.
        width: Option<u32>,
        /// OP-Tree mutants derived per scenario (0 = none, the
        /// historical wire default).
        mutations: usize,
    },
}

impl TaskSetRef {
    /// The shard-routing digest: FNV-1a over the canonical JSON
    /// encoding of the task set (tasks only — models, inference
    /// config, and sample count do not participate). Two requests for
    /// the same task content therefore always carry the same digest,
    /// so a sharded server lands them on the same shard and its
    /// `CompiledDesign`/`ProofSession` caches stay hot. Pure function
    /// of `self`: stable across processes, restarts, and shard counts.
    pub fn route_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in self.encode().encode().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    fn encode(&self) -> Json {
        match self {
            TaskSetRef::Human => Json::obj([("kind", "human".into())]),
            TaskSetRef::Machine { count, seed } => Json::obj([
                ("kind", "machine".into()),
                ("count", (*count).into()),
                ("seed", encode_u64(*seed)),
            ]),
            TaskSetRef::Suite {
                families,
                per_family,
                seed,
                depth,
                width,
                mutations,
            } => Json::obj([
                ("kind", "suite".into()),
                (
                    "families",
                    Json::Arr(families.iter().map(|f| f.as_str().into()).collect()),
                ),
                ("per_family", (*per_family).into()),
                ("seed", encode_u64(*seed)),
                ("depth", opt_num(*depth)),
                ("width", opt_num(*width)),
                ("mutations", (*mutations).into()),
            ]),
        }
    }

    fn decode(value: &Json) -> Result<TaskSetRef, String> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("task set needs a 'kind'")?;
        match kind {
            "human" => Ok(TaskSetRef::Human),
            "machine" => Ok(TaskSetRef::Machine {
                count: value
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("machine set needs 'count'")? as usize,
                seed: decode_u64(value.get("seed")).ok_or("machine set needs 'seed'")?,
            }),
            "suite" => Ok(TaskSetRef::Suite {
                families: value
                    .get("families")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|f| {
                        f.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "family names must be strings".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                per_family: value
                    .get("per_family")
                    .and_then(Json::as_u64)
                    .ok_or("suite needs 'per_family'")? as usize,
                seed: decode_u64(value.get("seed")).ok_or("suite needs 'seed'")?,
                depth: decode_opt_u32(value.get("depth"))?,
                width: decode_opt_u32(value.get("width"))?,
                // Absent on pre-mutation clients: default to none.
                mutations: value.get("mutations").and_then(Json::as_u64).unwrap_or(0) as usize,
            }),
            other => Err(format!("unknown task-set kind '{other}'")),
        }
    }
}

fn opt_num(v: Option<u32>) -> Json {
    v.map_or(Json::Null, Json::from)
}

/// Encodes a `u64` losslessly: plain number when it fits in the f64
/// integer range, decimal string beyond (JSON numbers are doubles, so
/// seeds above 2^53 would otherwise be silently rounded).
fn encode_u64(n: u64) -> Json {
    if n <= (1u64 << 53) {
        Json::from(n)
    } else {
        Json::Str(n.to_string())
    }
}

/// Decodes either form produced by [`encode_u64`].
fn decode_u64(v: Option<&Json>) -> Option<u64> {
    let v = v?;
    v.as_u64()
        .or_else(|| v.as_str().and_then(|s| s.parse().ok()))
}

fn decode_opt_u32(v: Option<&Json>) -> Result<Option<u32>, String> {
    match v {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| "expected a small non-negative number".to_string()),
    }
}

/// One evaluation job: a task set, a model roster, an inference
/// config, and a sample count.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// The tasks to evaluate.
    pub tasks: TaskSetRef,
    /// Backend names from [`fveval_llm::profiles`]; empty means the
    /// full roster.
    pub models: Vec<String>,
    /// Inference configuration.
    pub cfg: InferenceConfig,
    /// Samples per `(model, case)`; clamped to at least 1.
    pub samples: u32,
}

impl EvalRequest {
    /// Encodes the request body for `POST /v1/eval`.
    pub fn encode(&self) -> Json {
        Json::obj([
            ("tasks", self.tasks.encode()),
            (
                "models",
                Json::Arr(self.models.iter().map(|m| m.as_str().into()).collect()),
            ),
            (
                "cfg",
                Json::obj([
                    ("temperature", self.cfg.temperature.into()),
                    ("shots", self.cfg.shots.into()),
                    ("seed", encode_u64(self.cfg.seed)),
                ]),
            ),
            ("samples", self.samples.into()),
        ])
    }

    /// Decodes a `POST /v1/eval` body.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn decode(value: &Json) -> Result<EvalRequest, String> {
        let cfg = value.get("cfg").ok_or("request needs 'cfg'")?;
        let mut inference = InferenceConfig::greedy();
        inference.temperature = cfg
            .get("temperature")
            .and_then(Json::as_f64)
            .ok_or("cfg needs 'temperature'")?;
        inference.shots = cfg
            .get("shots")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("cfg needs 'shots'")?;
        inference.seed = decode_u64(cfg.get("seed")).ok_or("cfg needs 'seed'")?;
        Ok(EvalRequest {
            tasks: TaskSetRef::decode(value.get("tasks").ok_or("request needs 'tasks'")?)?,
            models: value
                .get("models")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|m| {
                    m.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "model names must be strings".to_string())
                })
                .collect::<Result<_, _>>()?,
            cfg: inference,
            samples: value
                .get("samples")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("request needs 'samples'")?,
        })
    }
}

/// A finished job's payload: per-model, per-case, per-sample verdicts
/// in task order — exactly what [`fveval_core::EvalEngine::run_matrix`]
/// returns, in portable form.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// `(model name, its per-case evals)` in roster order.
    pub models: Vec<(String, Vec<CaseEvals>)>,
}

impl EvalResult {
    /// Encodes the result for a `done` [`JobView`].
    pub fn encode(&self) -> Json {
        Json::obj([(
            "models",
            Json::Arr(
                self.models
                    .iter()
                    .map(|(name, cases)| {
                        Json::obj([
                            ("model", name.as_str().into()),
                            ("cases", Json::Arr(cases.iter().map(encode_case).collect())),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Decodes a `done` job's result payload.
    ///
    /// # Errors
    ///
    /// Returns a message on any missing or mistyped field.
    pub fn decode(value: &Json) -> Result<EvalResult, String> {
        let models = value
            .get("models")
            .and_then(Json::as_arr)
            .ok_or("result needs 'models'")?;
        Ok(EvalResult {
            models: models
                .iter()
                .map(|row| {
                    let name = row
                        .get("model")
                        .and_then(Json::as_str)
                        .ok_or("row needs 'model'")?
                        .to_string();
                    let cases = row
                        .get("cases")
                        .and_then(Json::as_arr)
                        .ok_or("row needs 'cases'")?
                        .iter()
                        .map(decode_case)
                        .collect::<Result<_, _>>()?;
                    Ok::<_, String>((name, cases))
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

fn encode_case(case: &CaseEvals) -> Json {
    Json::obj([
        ("id", case.id.as_str().into()),
        (
            "samples",
            Json::Arr(
                case.samples
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("syntax", s.syntax.into()),
                            ("func", s.func.into()),
                            ("partial", s.partial.into()),
                            ("bleu", s.bleu.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_case(value: &Json) -> Result<CaseEvals, String> {
    Ok(CaseEvals {
        id: value
            .get("id")
            .and_then(Json::as_str)
            .ok_or("case needs 'id'")?
            .to_string(),
        samples: value
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or("case needs 'samples'")?
            .iter()
            .map(|s| {
                Ok::<_, String>(SampleEval {
                    syntax: s
                        .get("syntax")
                        .and_then(Json::as_bool)
                        .ok_or("sample needs 'syntax'")?,
                    func: s
                        .get("func")
                        .and_then(Json::as_bool)
                        .ok_or("sample needs 'func'")?,
                    partial: s
                        .get("partial")
                        .and_then(Json::as_bool)
                        .ok_or("sample needs 'partial'")?,
                    bleu: s
                        .get("bleu")
                        .and_then(Json::as_f64)
                        .ok_or("sample needs 'bleu'")?,
                })
            })
            .collect::<Result<_, _>>()?,
    })
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is evaluating it.
    Running,
    /// Finished; the result payload is available.
    Done,
    /// Rejected or crashed; the error message is available.
    Failed,
}

impl JobState {
    /// The wire name (`queued` / `running` / `done` / `failed`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn from_wire(s: &str) -> Result<JobState, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            other => Err(format!("unknown job state '{other}'")),
        }
    }
}

/// One `GET /v1/jobs/<id>` answer (a *progress frame* when the job is
/// still in flight: `cases_done` advances as case groups settle, and a
/// long-poll `?wait_ms=` request parks until it does).
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Queue position (0 = next), only while queued.
    pub position: Option<u64>,
    /// Case groups settled so far (monotonic; `cases_total` once
    /// done). `0` while queued.
    pub cases_done: u64,
    /// Case groups this job evaluates; `0` until the shard has
    /// materialized the task list.
    pub cases_total: u64,
    /// The shard evaluating this job (routing is a pure function of
    /// the request's task digest). Absent on pre-shard servers.
    pub shard: Option<u64>,
    /// The result, once done.
    pub result: Option<EvalResult>,
    /// The failure message, if failed.
    pub error: Option<String>,
}

impl JobView {
    /// Encodes the job answer.
    pub fn encode(&self) -> Json {
        let mut members = vec![
            ("id".to_string(), encode_u64(self.id)),
            ("status".to_string(), self.state.as_str().into()),
            ("cases_done".to_string(), self.cases_done.into()),
            ("cases_total".to_string(), self.cases_total.into()),
        ];
        if let Some(position) = self.position {
            members.push(("position".to_string(), position.into()));
        }
        if let Some(shard) = self.shard {
            members.push(("shard".to_string(), shard.into()));
        }
        if let Some(result) = &self.result {
            members.push(("result".to_string(), result.encode()));
        }
        if let Some(error) = &self.error {
            members.push(("error".to_string(), error.as_str().into()));
        }
        Json::Obj(members)
    }

    /// Decodes a job answer. The progress fields default to zero/absent
    /// when missing, so pre-shard server answers still decode.
    ///
    /// # Errors
    ///
    /// Returns a message on any missing or mistyped field.
    pub fn decode(value: &Json) -> Result<JobView, String> {
        let state = JobState::from_wire(
            value
                .get("status")
                .and_then(Json::as_str)
                .ok_or("job needs 'status'")?,
        )?;
        Ok(JobView {
            id: decode_u64(value.get("id")).ok_or("job needs 'id'")?,
            state,
            position: value.get("position").and_then(Json::as_u64),
            cases_done: value.get("cases_done").and_then(Json::as_u64).unwrap_or(0),
            cases_total: value.get("cases_total").and_then(Json::as_u64).unwrap_or(0),
            shard: value.get("shard").and_then(Json::as_u64),
            result: value.get("result").map(EvalResult::decode).transpose()?,
            error: value
                .get("error")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn eval_request_round_trips() {
        let req = EvalRequest {
            tasks: TaskSetRef::Suite {
                families: vec!["fifo".into(), "gray".into()],
                per_family: 2,
                seed: 42,
                depth: Some(3),
                width: None,
                mutations: 2,
            },
            models: vec!["gpt-4o".into()],
            cfg: InferenceConfig::sampling().with_shots(3),
            samples: 5,
        };
        let wire = req.encode().encode();
        let back = EvalRequest::decode(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back, req);
        for tasks in [
            TaskSetRef::Human,
            TaskSetRef::Machine { count: 12, seed: 7 },
        ] {
            let req = EvalRequest {
                tasks,
                ..req.clone()
            };
            let wire = req.encode().encode();
            assert_eq!(EvalRequest::decode(&parse(&wire).unwrap()).unwrap(), req);
        }
    }

    #[test]
    fn huge_seeds_survive_the_wire_exactly() {
        // JSON numbers are doubles; seeds beyond 2^53 must not round.
        for seed in [u64::MAX, (1 << 53) + 1, 0x9E3779B97F4A7C15] {
            let mut cfg = InferenceConfig::greedy();
            cfg.seed = seed;
            let req = EvalRequest {
                tasks: TaskSetRef::Machine { count: 3, seed },
                models: vec![],
                cfg,
                samples: 1,
            };
            let back = EvalRequest::decode(&parse(&req.encode().encode()).unwrap()).unwrap();
            assert_eq!(back, req, "seed {seed:#x}");
        }
    }

    #[test]
    fn job_view_round_trips_with_result() {
        let view = JobView {
            id: 3,
            state: JobState::Done,
            position: None,
            cases_done: 1,
            cases_total: 1,
            shard: Some(2),
            result: Some(EvalResult {
                models: vec![(
                    "gpt-4o".into(),
                    vec![CaseEvals {
                        id: "case_0".into(),
                        samples: vec![SampleEval {
                            syntax: true,
                            func: false,
                            partial: true,
                            bleu: 1.0 / 3.0,
                        }],
                    }],
                )],
            }),
            error: None,
        };
        let wire = view.encode().encode();
        let back = JobView::decode(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back, view);
        let bleu = back.result.unwrap().models[0].1[0].samples[0].bleu;
        assert_eq!(bleu.to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn job_view_without_progress_fields_still_decodes() {
        // A pre-shard server omits the progress fields entirely; the
        // decoder must default them, not reject the frame.
        let old_wire = "{\"id\":7,\"status\":\"running\",\"position\":2}";
        let view = JobView::decode(&parse(old_wire).unwrap()).unwrap();
        assert_eq!(view.id, 7);
        assert_eq!(view.state, JobState::Running);
        assert_eq!(view.position, Some(2));
        assert_eq!((view.cases_done, view.cases_total), (0, 0));
        assert_eq!(view.shard, None);
    }

    #[test]
    fn route_digest_depends_on_tasks_only_and_is_stable() {
        let suite = TaskSetRef::Suite {
            families: vec!["fifo".into()],
            per_family: 2,
            seed: 42,
            depth: None,
            width: None,
            mutations: 1,
        };
        // Stable across calls and across equal values.
        assert_eq!(suite.route_digest(), suite.route_digest());
        assert_eq!(suite.route_digest(), suite.clone().route_digest());
        // Different task content gets (overwhelmingly) different
        // digests.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(TaskSetRef::Machine { count: 8, seed }.route_digest());
        }
        assert_eq!(seen.len(), 64, "64 distinct seeds, 64 distinct digests");
        assert_ne!(
            TaskSetRef::Human.route_digest(),
            TaskSetRef::Machine { count: 8, seed: 0 }.route_digest()
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        let missing = parse("{\"models\":[],\"samples\":1}").unwrap();
        assert!(EvalRequest::decode(&missing).unwrap_err().contains("cfg"));
        let bad_kind =
            parse("{\"tasks\":{\"kind\":\"nope\"},\"cfg\":{\"temperature\":0,\"shots\":0,\"seed\":0},\"samples\":1}")
                .unwrap();
        assert!(EvalRequest::decode(&bad_kind).unwrap_err().contains("nope"));
    }
}
