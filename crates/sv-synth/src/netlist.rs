//! The flat word-level netlist produced by elaboration.

use crate::netexpr::Nx;
use std::collections::HashMap;

/// Index of an atom in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives an atom.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomKind {
    /// Free primary input.
    Input,
    /// Combinational definition.
    Comb(Nx),
    /// Register with synchronous next-state function and reset value.
    Reg {
        /// Next-state expression.
        next: Nx,
        /// Reset/initial value.
        init: u128,
    },
}

/// One atom: a named, width-annotated value holder.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomDef {
    /// Flat hierarchical name (e.g. `unit_0.data[3]`).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Driver.
    pub kind: AtomKind,
}

/// A contiguous segment of a net, LSB-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Atom providing the bits.
    pub atom: AtomId,
    /// Offset into the atom.
    pub lo: u32,
    /// Number of bits taken.
    pub width: u32,
}

/// How a source-level net maps onto atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct NetBinding {
    /// Total width of the net.
    pub width: u32,
    /// Width of one first-dimension element (for `x[i]` selects on
    /// multi-dimensional packed nets); 1 for plain vectors.
    pub elem_width: u32,
    /// LSB-first segments covering the full width.
    pub segs: Vec<Seg>,
}

impl NetBinding {
    /// Reads the whole net as an [`Nx`] expression.
    pub fn read(&self) -> Nx {
        self.read_range(0, self.width)
    }

    /// Reads bits `[lo, lo+width)` of the net.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the net width.
    pub fn read_range(&self, lo: u32, width: u32) -> Nx {
        assert!(lo + width <= self.width, "net range read out of bounds");
        let mut parts: Vec<Nx> = Vec::new();
        let mut seg_base = 0u32;
        for seg in &self.segs {
            let seg_lo = seg_base;
            let seg_hi = seg_base + seg.width;
            let want_lo = lo.max(seg_lo);
            let want_hi = (lo + width).min(seg_hi);
            if want_lo < want_hi {
                let inner = Nx::Atom(seg.atom);
                let off = seg.lo + (want_lo - seg_lo);
                let w = want_hi - want_lo;
                parts.push(Nx::Slice {
                    inner: Box::new(inner),
                    lo: off,
                    width: w,
                });
            }
            seg_base = seg_hi;
        }
        match parts.len() {
            0 => panic!("net has no segments covering the range"),
            1 => parts.pop().expect("one part"),
            _ => Nx::Concat(parts),
        }
    }
}

/// A flat design: atoms plus the name bindings of source-level nets.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All atoms.
    pub atoms: Vec<AtomDef>,
    /// Source-net name to binding (array elements appear as `name[i]`).
    pub nets: HashMap<String, NetBinding>,
    /// Unpacked array metadata: name to element count.
    pub arrays: HashMap<String, u32>,
    /// Name of the active-low reset input, if detected.
    pub reset_name: Option<String>,
    /// Name of the clock input, if detected.
    pub clock_name: Option<String>,
    /// Warnings accumulated during elaboration (undriven nets, etc.).
    pub warnings: Vec<String>,
    /// Top-module parameter values (assertion-visible constants such as
    /// FSM state encodings), in declaration order.
    pub params: Vec<(String, u128)>,
}

impl Netlist {
    /// Looks up an atom definition.
    pub fn atom(&self, id: AtomId) -> &AtomDef {
        &self.atoms[id.index()]
    }

    /// Width of an atom.
    pub fn atom_width(&self, id: AtomId) -> u32 {
        self.atoms[id.index()].width
    }

    /// All input atoms in creation order.
    pub fn inputs(&self) -> impl Iterator<Item = (AtomId, &AtomDef)> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.kind, AtomKind::Input))
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// All register atoms in creation order.
    pub fn regs(&self) -> impl Iterator<Item = (AtomId, &AtomDef)> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.kind, AtomKind::Reg { .. }))
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// Resolves a net binding by name.
    pub fn net(&self, name: &str) -> Option<&NetBinding> {
        self.nets.get(name)
    }

    /// Topological order of combinational atoms (dependencies first).
    ///
    /// # Errors
    ///
    /// Returns the name of an atom on a combinational cycle.
    pub fn comb_topo_order(&self) -> Result<Vec<AtomId>, String> {
        let n = self.atoms.len();
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; n];
        let mut order = Vec::new();
        // Iterative DFS over comb atoms only.
        for start in 0..n {
            if !matches!(self.atoms[start].kind, AtomKind::Comb(_)) || state[start] == 2 {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(start, false)];
            while let Some((id, expanded)) = stack.pop() {
                if expanded {
                    state[id] = 2;
                    order.push(AtomId(id as u32));
                    continue;
                }
                if state[id] == 2 {
                    continue;
                }
                if state[id] == 1 {
                    return Err(self.atoms[id].name.clone());
                }
                state[id] = 1;
                stack.push((id, true));
                if let AtomKind::Comb(e) = &self.atoms[id].kind {
                    let mut deps = Vec::new();
                    e.visit_atoms(&mut |a| deps.push(a));
                    for d in deps {
                        let di = d.index();
                        if matches!(self.atoms[di].kind, AtomKind::Comb(_)) {
                            if state[di] == 1 {
                                return Err(self.atoms[di].name.clone());
                            }
                            if state[di] == 0 {
                                stack.push((di, false));
                            }
                        }
                    }
                }
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netexpr::Nx;

    fn mk_netlist() -> Netlist {
        let mut nl = Netlist::default();
        nl.atoms.push(AtomDef {
            name: "a".into(),
            width: 4,
            kind: AtomKind::Input,
        });
        nl.atoms.push(AtomDef {
            name: "b".into(),
            width: 4,
            kind: AtomKind::Comb(Nx::Atom(AtomId(0))),
        });
        nl.atoms.push(AtomDef {
            name: "c".into(),
            width: 4,
            kind: AtomKind::Comb(Nx::Atom(AtomId(1))),
        });
        nl
    }

    #[test]
    fn topo_order_respects_deps() {
        let nl = mk_netlist();
        let order = nl.comb_topo_order().unwrap();
        assert_eq!(order, vec![AtomId(1), AtomId(2)]);
    }

    #[test]
    fn cycle_detected() {
        let mut nl = mk_netlist();
        // b depends on c, c depends on b.
        nl.atoms[1].kind = AtomKind::Comb(Nx::Atom(AtomId(2)));
        assert!(nl.comb_topo_order().is_err());
    }

    #[test]
    fn binding_read_range_stitches_segments() {
        let b = NetBinding {
            width: 8,
            elem_width: 1,
            segs: vec![
                Seg {
                    atom: AtomId(0),
                    lo: 0,
                    width: 4,
                },
                Seg {
                    atom: AtomId(1),
                    lo: 0,
                    width: 4,
                },
            ],
        };
        // Whole read concatenates both atoms.
        match b.read() {
            Nx::Concat(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
        // A read inside one segment is a single slice.
        match b.read_range(1, 2) {
            Nx::Slice {
                lo: 1, width: 2, ..
            } => {}
            other => panic!("expected slice, got {other:?}"),
        }
        // A straddling read has two parts.
        match b.read_range(2, 4) {
            Nx::Concat(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
    }
}
