//! A hand-rolled JSON value, encoder, and decoder.
//!
//! The build environment has no registry access (same offline-shim
//! philosophy as `crates/shims/`), so the wire protocol and the
//! on-disk verdict store share this minimal module instead of serde.
//! Two properties matter here:
//!
//! - **round-trip exactness**: `f64` values are encoded with Rust's
//!   shortest round-trip formatting and decoded with the
//!   correctly-rounded `str::parse::<f64>()`, so a verdict's BLEU
//!   score survives server → client → table rendering bit-for-bit;
//! - **deterministic encoding**: objects are ordered vectors, not hash
//!   maps, so the same value always encodes to the same bytes (store
//!   segments and HTTP responses are diffable).

use std::fmt::Write as _;

/// One JSON value. Object member order is preserved (and therefore
/// encoding is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (decoded to the nearest `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered member list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Flattens the value into `dotted.path=value` lines, sorted
    /// lexicographically by the full line. Non-object leaves (numbers,
    /// strings, booleans, arrays, null) encode compactly on one line.
    /// Used by `fveval stats`, whose output must be deterministic and
    /// greppable regardless of how any stats block was assembled.
    pub fn flatten_sorted(&self) -> Vec<String> {
        fn walk(prefix: &str, value: &Json, out: &mut Vec<String>) {
            match value {
                Json::Obj(members) => {
                    for (key, inner) in members {
                        let path = if prefix.is_empty() {
                            key.clone()
                        } else {
                            format!("{prefix}.{key}")
                        };
                        walk(&path, inner, out);
                    }
                }
                other => out.push(format!("{prefix}={}", other.encode())),
            }
        }
        let mut out = Vec::new();
        walk("", self, &mut out);
        out.sort();
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => encode_number(*n, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Shortest round-trip rendering: integers without a fractional part
/// (so counters look like counters), everything else via Rust's `{:?}`
/// float formatting, which is exact under `str::parse::<f64>()`.
/// Non-finite values — which nothing in the protocol produces — encode
/// as `null` rather than emitting invalid JSON.
fn encode_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        write!(out, "{n:?}").expect("write to String");
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input, trailing
/// garbage, or nesting deeper than 64 levels (the decoder reads
/// network input, so recursion is bounded).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", char::from(other)));
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(slice).map_err(|_| "non-ASCII \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("unparseable number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "0.5", "1e300", "\"a\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for n in [0.5, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -123.456e-78] {
            let v = Json::Num(n);
            let back = parse(&v.encode()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t nul \u{1} unicode \u{1F600}";
        let v = Json::Str(s.to_string());
        assert_eq!(parse(&v.encode()).unwrap(), v);
        // Surrogate-pair escapes decode too.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let text = "{\"b\": [1, {\"c\": null}], \"a\": true}";
        let v = parse(text).unwrap();
        assert_eq!(v.encode(), "{\"b\":[1,{\"c\":null}],\"a\":true}");
        assert_eq!(v.get("a"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn flatten_sorted_is_deterministic_and_ordered() {
        // Keys deliberately out of order, including a histogram-style
        // block with array leaves — flattening must sort regardless of
        // member insertion order.
        let text = "{\"z\":{\"b\":2,\"a\":1},\"hist\":{\"span.solve.us\":{\"count\":3,\
                    \"buckets\":[[1,2],[3,1]]}},\"a\":true}";
        let v = parse(text).unwrap();
        let lines = v.flatten_sorted();
        assert_eq!(
            lines,
            vec![
                "a=true".to_string(),
                "hist.span.solve.us.buckets=[[1,2],[3,1]]".to_string(),
                "hist.span.solve.us.count=3".to_string(),
                "z.a=1".to_string(),
                "z.b=2".to_string(),
            ]
        );
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "output is already sorted");
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "\"abc",
            "01x",
            "nul",
            "{\"a\"}",
            "[1]]",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
        // Recursion bound holds instead of overflowing the stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }
}
