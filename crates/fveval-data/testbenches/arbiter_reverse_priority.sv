// NL2SVA-Human collateral: 4-client reverse-priority arbiter (the
// highest index wins). Includes the hold/continued-grant machinery of
// the round-robin variant.
module arbiter_reverse_priority_tb (
    input clk,
    input reset_,
    input [3:0] tb_req,
    input busy,
    input hold
);
  parameter N_CLIENTS = 4;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [3:0] gnt_q;

  wire cont_gnt;
  assign cont_gnt = hold && (gnt_q != 4'd0) && !busy;

  wire [3:0] expected_gnt;
  assign expected_gnt = tb_req[3] ? 4'b1000
                      : tb_req[2] ? 4'b0100
                      : tb_req[1] ? 4'b0010
                      : tb_req[0] ? 4'b0001
                      : 4'b0000;

  wire [3:0] tb_gnt;
  assign tb_gnt = busy ? 4'b0000 : (cont_gnt ? gnt_q : expected_gnt);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      gnt_q <= 4'd0;
    end else begin
      gnt_q <= tb_gnt;
    end
  end
endmodule
