//! Cycle-accurate 2-state interpreter for elaborated netlists.
//!
//! The simulator is the differential-testing oracle for the bit-blaster
//! (property tests drive both with the same stimuli and compare every
//! net) and powers the simulation-based-verification ablation bench.

use crate::netexpr::{mask, Nx, NxBin, NxRed};
use crate::netlist::{AtomId, AtomKind, Netlist};
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Description.
    pub message: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl Error for SimError {}

/// A cycle-accurate interpreter over a [`Netlist`].
///
/// # Examples
///
/// ```
/// use sv_parser::parse_source;
/// use sv_synth::{elaborate, Simulator};
///
/// let f = parse_source(
///     "module m (clk, reset_, q);\ninput clk; input reset_; output [3:0] q;\n\
///      reg [3:0] c;\nalways @(posedge clk) begin\n\
///      if (!reset_) c <= 4'd0; else c <= c + 4'd1;\nend\n\
///      assign q = c;\nendmodule\n",
/// ).unwrap();
/// let nl = elaborate(&f, "m").unwrap();
/// let mut sim = Simulator::new(&nl).unwrap();
/// sim.step(&|_, _| 1); // all inputs high (incl. deasserted reset_)
/// sim.step(&|_, _| 1);
/// assert_eq!(sim.read_net("q"), Some(1));
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    topo: Vec<AtomId>,
    /// Current register state (by atom index; non-reg atoms unused).
    state: Vec<u128>,
    /// Values of all atoms from the most recent step.
    values: Vec<u128>,
    stepped: bool,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator, resetting all registers to their init values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist has a combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Simulator<'a>, SimError> {
        let topo = netlist.comb_topo_order().map_err(|n| SimError {
            message: format!("combinational cycle through '{n}'"),
        })?;
        let mut state = vec![0u128; netlist.atoms.len()];
        for (id, def) in netlist.regs() {
            if let AtomKind::Reg { init, .. } = def.kind {
                state[id.index()] = init;
            }
        }
        Ok(Simulator {
            netlist,
            topo,
            state,
            values: vec![0; netlist.atoms.len()],
            stepped: false,
        })
    }

    /// Resets all registers to their init values.
    pub fn reset(&mut self) {
        for (id, def) in self.netlist.regs() {
            if let AtomKind::Reg { init, .. } = def.kind {
                self.state[id.index()] = init;
            }
        }
        self.stepped = false;
    }

    /// Evaluates one clock cycle: combinational settle with the given
    /// inputs, then register update. `input_fn(name, width)` provides
    /// each primary input's value (masked to width automatically).
    pub fn step(&mut self, input_fn: &dyn Fn(&str, u32) -> u128) {
        // Load inputs and register state.
        for (i, def) in self.netlist.atoms.iter().enumerate() {
            match def.kind {
                AtomKind::Input => {
                    self.values[i] = mask(input_fn(&def.name, def.width), def.width);
                }
                AtomKind::Reg { .. } => {
                    self.values[i] = self.state[i];
                }
                AtomKind::Comb(_) => {}
            }
        }
        // Combinational settle.
        for &id in &self.topo {
            if let AtomKind::Comb(e) = &self.netlist.atoms[id.index()].kind {
                self.values[id.index()] = self.eval(e);
            }
        }
        // Register update.
        let mut next = Vec::new();
        for (id, def) in self.netlist.regs() {
            if let AtomKind::Reg { next: nx, .. } = &def.kind {
                next.push((id, mask(self.eval(nx), def.width)));
            }
        }
        for (id, v) in next {
            self.state[id.index()] = v;
        }
        self.stepped = true;
    }

    /// Value of an atom after the latest [`Simulator::step`].
    pub fn atom_value(&self, id: AtomId) -> u128 {
        self.values[id.index()]
    }

    /// Reads a net by name (post-step combinational view).
    /// Returns `None` for unknown nets or before the first step.
    pub fn read_net(&self, name: &str) -> Option<u128> {
        if !self.stepped {
            return None;
        }
        let binding = self.netlist.net(name)?;
        let mut acc: u128 = 0;
        let mut off = 0u32;
        for seg in &binding.segs {
            let v = mask(self.values[seg.atom.index()] >> seg.lo, seg.width);
            acc |= v << off;
            off += seg.width;
        }
        Some(acc)
    }

    fn eval(&self, nx: &Nx) -> u128 {
        let aw = |a: AtomId| self.netlist.atom_width(a);
        match nx {
            Nx::Const { value, .. } => *value,
            Nx::Atom(a) => self.values[a.index()],
            Nx::Slice { inner, lo, width } => mask(self.eval(inner) >> lo, *width),
            Nx::DynSlice {
                inner,
                index,
                elem_width,
            } => {
                let v = self.eval(inner);
                let i = self.eval(index);
                let total = inner.width(&aw);
                let count = u128::from(total / elem_width);
                if i >= count {
                    0
                } else {
                    mask(v >> (i as u32 * *elem_width), *elem_width)
                }
            }
            Nx::Concat(parts) => {
                let mut acc = 0u128;
                let mut off = 0u32;
                for p in parts {
                    acc |= self.eval(p) << off;
                    off += p.width(&aw);
                }
                acc
            }
            Nx::Not(i) => mask(!self.eval(i), i.width(&aw)),
            Nx::Neg(i) => mask(self.eval(i).wrapping_neg(), i.width(&aw)),
            Nx::Bin { op, a, b } => {
                let w = a.width(&aw);
                let x = self.eval(a);
                let y = self.eval(b);
                match op {
                    NxBin::Add => mask(x.wrapping_add(y), w),
                    NxBin::Sub => mask(x.wrapping_sub(y), w),
                    NxBin::Mul => mask(x.wrapping_mul(y), w),
                    NxBin::Div => x.checked_div(y).unwrap_or(mask(u128::MAX, w)),
                    NxBin::Mod => {
                        if y == 0 {
                            x
                        } else {
                            x % y
                        }
                    }
                    NxBin::And => x & y,
                    NxBin::Or => x | y,
                    NxBin::Xor => x ^ y,
                    NxBin::Shl => {
                        if y >= 128 {
                            0
                        } else {
                            mask(x << y, w)
                        }
                    }
                    NxBin::LShr => {
                        if y >= 128 {
                            0
                        } else {
                            x >> y
                        }
                    }
                    NxBin::AShr => {
                        // Arithmetic on the w-bit value.
                        let sign = (x >> (w - 1)) & 1 == 1;

                        if y >= u128::from(w) {
                            if sign {
                                mask(u128::MAX, w)
                            } else {
                                0
                            }
                        } else {
                            let base = x >> y;
                            if sign {
                                let fill = mask(u128::MAX, w) << (u128::from(w) - y).min(127);
                                mask(base | fill, w)
                            } else {
                                base
                            }
                        }
                    }
                    NxBin::Eq => u128::from(x == y),
                    NxBin::Ult => u128::from(x < y),
                    NxBin::Ule => u128::from(x <= y),
                }
            }
            Nx::Reduce { op, inner } => {
                let w = inner.width(&aw);
                let v = self.eval(inner);
                match op {
                    NxRed::Or => u128::from(v != 0),
                    NxRed::And => u128::from(v == mask(u128::MAX, w)),
                    NxRed::Xor => u128::from(v.count_ones() % 2 == 1),
                }
            }
            Nx::Mux { sel, t, e } => {
                if self.eval(sel) & 1 == 1 {
                    self.eval(t)
                } else {
                    self.eval(e)
                }
            }
            Nx::Countones { inner, width } => {
                mask(u128::from(self.eval(inner).count_ones()), *width)
            }
            Nx::Onehot(i) => u128::from(self.eval(i).count_ones() == 1),
            Nx::Onehot0(i) => u128::from(self.eval(i).count_ones() <= 1),
            Nx::Resize { inner, width } => mask(self.eval(inner), *width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate;
    use crate::frame::FrameExpander;
    use fv_aig::{Aig, AigEvaluator, BitVec};
    use std::collections::HashMap;
    use sv_parser::parse_source;

    fn fifo_like() -> Netlist {
        let src = "module m (clk, reset_, push, pop, cnt_out, full, empty);\n\
            input clk; input reset_; input push; input pop;\n\
            output [2:0] cnt_out; output full; output empty;\n\
            reg [2:0] cnt;\n\
            always @(posedge clk) begin\n\
            if (!reset_) cnt <= 3'd0;\n\
            else cnt <= cnt + push - pop;\nend\n\
            assign cnt_out = cnt;\n\
            assign full = (cnt == 3'd4);\n\
            assign empty = (cnt == 3'd0);\nendmodule\n";
        let f = parse_source(src).unwrap();
        elaborate(&f, "m").unwrap()
    }

    #[test]
    fn push_pop_counter_behaviour() {
        let nl = fifo_like();
        let mut sim = Simulator::new(&nl).unwrap();
        let step = |sim: &mut Simulator, push: u128, pop: u128| {
            sim.step(&move |name, _| match name {
                "reset_" => 1,
                "push" => push,
                "pop" => pop,
                _ => 0,
            });
        };
        step(&mut sim, 1, 0);
        assert_eq!(sim.read_net("empty"), Some(1), "empty before clock edge");
        step(&mut sim, 1, 0);
        step(&mut sim, 1, 0);
        step(&mut sim, 0, 1);
        assert_eq!(sim.read_net("cnt_out"), Some(3));
        step(&mut sim, 0, 1);
        assert_eq!(sim.read_net("cnt_out"), Some(2));
    }

    #[test]
    fn simulator_matches_bitblast_on_random_stimuli() {
        // Differential test: drive both backends with identical inputs.
        let nl = fifo_like();
        let mut sim = Simulator::new(&nl).unwrap();
        let exp = FrameExpander::new(&nl).unwrap();
        let mut g = Aig::new();
        let mut state = exp.initial_state();

        // Deterministic pseudo-random stimuli.
        let mut seed = 0xDEADBEEFu64;
        let mut next_bit = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed & 1
        };
        for _ in 0..32 {
            let push = next_bit();
            let pop = next_bit();
            let frame = exp.expand(&mut g, &state, &mut |_g, id, w| {
                let name = nl.atom(id).name.clone();
                let v = match name.as_str() {
                    "reset_" => 1,
                    "push" => u128::from(push),
                    "pop" => u128::from(pop),
                    _ => 0,
                };
                BitVec::constant(w as usize, v)
            });
            sim.step(&move |name, _| match name {
                "reset_" => 1,
                "push" => u128::from(push),
                "pop" => u128::from(pop),
                _ => 0,
            });
            let ev = AigEvaluator::combinational(&g, &[]);
            for name in ["cnt_out", "full", "empty"] {
                let bv = frame.read_net(nl.net(name).unwrap());
                let aig_val: u128 = bv
                    .bits()
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (ev.lit(b) as u128) << i)
                    .sum();
                assert_eq!(Some(aig_val), sim.read_net(name), "mismatch on {name}");
            }
            // Advance AIG state with evaluated next values (constants).
            let mut new_state = HashMap::new();
            for (id, bv) in &frame.reg_next {
                let v: u128 = bv
                    .bits()
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (ev.lit(b) as u128) << i)
                    .sum();
                new_state.insert(*id, BitVec::constant(bv.width(), v));
            }
            state = new_state;
        }
    }

    #[test]
    fn read_net_before_step_is_none() {
        let nl = fifo_like();
        let sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.read_net("cnt_out"), None);
        assert_eq!(sim.read_net("missing"), None);
    }
}
