//! Bounded monitor encoding for SVA sequences and properties.
//!
//! Sequences are encoded as *match sets*: the set of `(end_cycle,
//! condition)` pairs at which a match starting at `t` can complete
//! within the horizon, plus a `beyond` condition under which a match
//! could still complete past the horizon. Weak operators treat `beyond`
//! as success, strong operators as failure — the LTLf neutral/strong
//! distinction that produces the paper's partial-equivalence examples
//! (e.g. `|-> ##[1:$] e` vs `|-> strong(##[0:$] e)`).

use crate::env::TraceEnv;
use crate::error::EncodeError;
use crate::expr::compile_bool;
use fv_aig::{Aig, AigLit};
use sv_ast::{Assertion, DelayBound, PropExpr, SeqExpr};

type Result<T> = std::result::Result<T, EncodeError>;

/// The bounded match set of a sequence, anchored at some start cycle.
#[derive(Debug, Clone)]
pub struct SeqEnc {
    /// `(end_cycle, condition)` pairs for matches completing in-horizon.
    pub ends: Vec<(u32, AigLit)>,
    /// Condition under which a match could complete beyond the horizon.
    pub beyond: AigLit,
}

impl SeqEnc {
    /// Disjunction of all in-horizon match conditions.
    pub fn any_match(&self, g: &mut Aig) -> AigLit {
        g.or_all(self.ends.iter().map(|&(_, c)| c))
    }
}

/// Encodes sequence `seq` anchored at cycle `t` over a trace of
/// `horizon` cycles (cycles `0..horizon`).
///
/// # Errors
///
/// Propagates [`EncodeError`] from the boolean layer; zero-repetition
/// and other unsupported corners are reported as `Unsupported`.
pub fn encode_seq(
    g: &mut Aig,
    seq: &SeqExpr,
    t: u32,
    horizon: u32,
    env: &mut dyn TraceEnv,
) -> Result<SeqEnc> {
    if t >= horizon {
        return Ok(SeqEnc {
            ends: Vec::new(),
            beyond: AigLit::TRUE,
        });
    }
    match seq {
        SeqExpr::Expr(e) => {
            let c = compile_bool(g, e, t as i32, env)?;
            Ok(SeqEnc {
                ends: vec![(t, c)],
                beyond: AigLit::FALSE,
            })
        }
        SeqExpr::Delay { lhs, lo, hi, rhs } => {
            let lhs_enc = match lhs {
                Some(l) => encode_seq(g, l, t, horizon, env)?,
                None => SeqEnc {
                    // A leading delay anchors the right operand at t + d.
                    ends: vec![(t, AigLit::TRUE)],
                    beyond: AigLit::FALSE,
                },
            };
            let mut ends = Vec::new();
            let mut beyond = lhs_enc.beyond;
            for &(e, c) in &lhs_enc.ends {
                let max_d = match hi {
                    DelayBound::Finite(h) => *h,
                    DelayBound::Unbounded => horizon.saturating_sub(e),
                };
                for d in *lo..=max_d {
                    let s = e + d;
                    if s >= horizon {
                        beyond = g.or(beyond, c);
                        break;
                    }
                    let rhs_enc = encode_seq(g, rhs, s, horizon, env)?;
                    for &(e2, c2) in &rhs_enc.ends {
                        let both = g.and(c, c2);
                        ends.push((e2, both));
                    }
                    let rb = g.and(c, rhs_enc.beyond);
                    beyond = g.or(beyond, rb);
                }
                // An unbounded delay can always defer past the horizon.
                if hi.finite().is_none() {
                    beyond = g.or(beyond, c);
                }
                // A bounded window reaching past the horizon defers too.
                if let DelayBound::Finite(h) = hi {
                    if e + h >= horizon {
                        beyond = g.or(beyond, c);
                    }
                }
            }
            Ok(SeqEnc {
                ends: merge_ends(g, ends),
                beyond,
            })
        }
        SeqExpr::Repeat { seq, lo, hi } => {
            // `[*0...]` approximated as `[*1...]` (documented; the corpora
            // never use zero repetition).
            let lo = (*lo).max(1);
            let max_n = match hi {
                DelayBound::Finite(h) => (*h).max(lo),
                DelayBound::Unbounded => horizon + 1,
            };
            let mut ends = Vec::new();
            let mut beyond = AigLit::FALSE;
            // level = match set after k+1 consecutive matches.
            let mut level = encode_seq(g, seq, t, horizon, env)?;
            let mut count = 1;
            loop {
                if count >= lo {
                    ends.extend(level.ends.iter().copied());
                    if hi.finite().is_none() || count == max_n {
                        beyond = g.or(beyond, level.beyond);
                    }
                }
                beyond = g.or(beyond, level.beyond);
                if count == max_n || level.ends.is_empty() {
                    break;
                }
                // Chain one more match: starts one past each end.
                let mut next_ends = Vec::new();
                for &(e, c) in &level.ends {
                    let s = e + 1;
                    if s >= horizon {
                        beyond = g.or(beyond, c);
                        continue;
                    }
                    let sub = encode_seq(g, seq, s, horizon, env)?;
                    for &(e2, c2) in &sub.ends {
                        let both = g.and(c, c2);
                        next_ends.push((e2, both));
                    }
                    let sb = g.and(c, sub.beyond);
                    beyond = g.or(beyond, sb);
                }
                level = SeqEnc {
                    ends: merge_ends(g, next_ends),
                    beyond: AigLit::FALSE,
                };
                count += 1;
            }
            Ok(SeqEnc {
                ends: merge_ends(g, ends),
                beyond,
            })
        }
        SeqExpr::And(a, b) => {
            let ea = encode_seq(g, a, t, horizon, env)?;
            let eb = encode_seq(g, b, t, horizon, env)?;
            let mut ends = Vec::new();
            for &(e1, c1) in &ea.ends {
                for &(e2, c2) in &eb.ends {
                    let both = g.and(c1, c2);
                    ends.push((e1.max(e2), both));
                }
            }
            let ma = ea.any_match(g);
            let mb = eb.any_match(g);
            let mb_or_beyond = g.or(mb, eb.beyond);
            let t1 = g.and(ea.beyond, mb_or_beyond);
            let t2 = g.and(eb.beyond, ma);
            let beyond = g.or(t1, t2);
            Ok(SeqEnc {
                ends: merge_ends(g, ends),
                beyond,
            })
        }
        SeqExpr::Or(a, b) => {
            let ea = encode_seq(g, a, t, horizon, env)?;
            let eb = encode_seq(g, b, t, horizon, env)?;
            let mut ends = ea.ends;
            ends.extend(eb.ends);
            let beyond = g.or(ea.beyond, eb.beyond);
            Ok(SeqEnc {
                ends: merge_ends(g, ends),
                beyond,
            })
        }
        SeqExpr::Throughout(guard, body) => {
            let eb = encode_seq(g, body, t, horizon, env)?;
            let mut ends = Vec::new();
            for &(e, c) in &eb.ends {
                let mut cond = c;
                for u in t..=e {
                    let gv = compile_bool(g, guard, u as i32, env)?;
                    cond = g.and(cond, gv);
                }
                ends.push((e, cond));
            }
            let mut beyond = eb.beyond;
            for u in t..horizon {
                let gv = compile_bool(g, guard, u as i32, env)?;
                beyond = g.and(beyond, gv);
            }
            Ok(SeqEnc { ends, beyond })
        }
    }
}

/// Combines duplicate end cycles with OR, keeping the set small.
fn merge_ends(g: &mut Aig, mut ends: Vec<(u32, AigLit)>) -> Vec<(u32, AigLit)> {
    ends.sort_by_key(|&(e, _)| e);
    let mut out: Vec<(u32, AigLit)> = Vec::with_capacity(ends.len());
    for (e, c) in ends {
        match out.last_mut() {
            Some((pe, pc)) if *pe == e => {
                *pc = g.or(*pc, c);
            }
            _ => out.push((e, c)),
        }
    }
    out
}

/// Encodes "property `p` holds, anchored at cycle `t`" over a trace of
/// `horizon` cycles.
///
/// # Errors
///
/// Propagates [`EncodeError`] from the sequence and boolean layers.
pub fn encode_prop(
    g: &mut Aig,
    p: &PropExpr,
    t: u32,
    horizon: u32,
    env: &mut dyn TraceEnv,
) -> Result<AigLit> {
    if t >= horizon {
        // Obligations anchored past the horizon are undetermined;
        // the neutral (weak) reading treats them as satisfied.
        return Ok(AigLit::TRUE);
    }
    Ok(match p {
        PropExpr::Seq(s) | PropExpr::Weak(s) => {
            // Sequences used as properties default to weak in assert.
            let enc = encode_seq(g, s, t, horizon, env)?;
            let m = enc.any_match(g);
            g.or(m, enc.beyond)
        }
        PropExpr::Strong(s) => {
            let enc = encode_seq(g, s, t, horizon, env)?;
            enc.any_match(g)
        }
        PropExpr::Not(inner) => {
            let v = encode_prop(g, inner, t, horizon, env)?;
            !v
        }
        PropExpr::And(a, b) => {
            let x = encode_prop(g, a, t, horizon, env)?;
            let y = encode_prop(g, b, t, horizon, env)?;
            g.and(x, y)
        }
        PropExpr::Or(a, b) => {
            let x = encode_prop(g, a, t, horizon, env)?;
            let y = encode_prop(g, b, t, horizon, env)?;
            g.or(x, y)
        }
        PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } => {
            let enc = encode_seq(g, ante, t, horizon, env)?;
            let mut holds = AigLit::TRUE;
            for &(e, c) in &enc.ends {
                let start = e + u32::from(*non_overlap);
                let ok = encode_prop(g, cons, start, horizon, env)?;
                let ob = g.implies(c, ok);
                holds = g.and(holds, ob);
            }
            // Antecedent matches beyond the horizon impose no in-window
            // obligation (neutral reading).
            holds
        }
        PropExpr::SEventually(inner) => {
            let mut any = AigLit::FALSE;
            for u in t..horizon {
                let v = encode_prop(g, inner, u, horizon, env)?;
                any = g.or(any, v);
            }
            any
        }
        PropExpr::Always(inner) => {
            let mut all = AigLit::TRUE;
            for u in t..horizon {
                let v = encode_prop(g, inner, u, horizon, env)?;
                all = g.and(all, v);
            }
            all
        }
        PropExpr::Nexttime(inner) => encode_prop(g, inner, t + 1, horizon, env)?,
        PropExpr::Until { strong, lhs, rhs } => {
            // holds iff rhs holds at some u with lhs holding on [t, u),
            // or (weak) lhs holds through the whole window.
            let mut result = AigLit::FALSE;
            let mut lhs_prefix = AigLit::TRUE;
            for u in t..horizon {
                let r = encode_prop(g, rhs, u, horizon, env)?;
                let here = g.and(lhs_prefix, r);
                result = g.or(result, here);
                let l = encode_prop(g, lhs, u, horizon, env)?;
                lhs_prefix = g.and(lhs_prefix, l);
            }
            if !*strong {
                result = g.or(result, lhs_prefix);
            }
            result
        }
        PropExpr::IfElse { cond, then, alt } => {
            let c = compile_bool(g, cond, t as i32, env)?;
            let tv = encode_prop(g, then, t, horizon, env)?;
            let ev = match alt {
                Some(a) => encode_prop(g, a, t, horizon, env)?,
                None => AigLit::TRUE,
            };
            g.mux(c, tv, ev)
        }
    })
}

/// Encodes a full assertion's verdict at anchor cycle 0:
/// the body holds, or `disable iff` fired anywhere in the window.
///
/// # Errors
///
/// Propagates [`EncodeError`].
pub fn encode_assertion(
    g: &mut Aig,
    a: &Assertion,
    horizon: u32,
    env: &mut dyn TraceEnv,
) -> Result<AigLit> {
    encode_assertion_at(g, a, 0, horizon, env)
}

/// Encodes a full assertion's verdict anchored at cycle `t`.
///
/// # Errors
///
/// Propagates [`EncodeError`].
pub fn encode_assertion_at(
    g: &mut Aig,
    a: &Assertion,
    t: u32,
    horizon: u32,
    env: &mut dyn TraceEnv,
) -> Result<AigLit> {
    let holds = encode_prop(g, &a.body, t, horizon, env)?;
    match &a.disable {
        None => Ok(holds),
        Some(d) => {
            // Approximation (documented): a disable anywhere in the
            // evaluation window discharges the attempt.
            let mut fired = AigLit::FALSE;
            for u in t..horizon {
                let dv = compile_bool(g, d, u as i32, env)?;
                fired = g.or(fired, dv);
            }
            Ok(g.or(holds, fired))
        }
    }
}

/// A reasonable evaluation horizon for a pair of assertions: bounded
/// temporal depth plus sampled-value look-back plus slack for the
/// unbounded tail.
pub(crate) fn horizon_for(a: &Assertion, b: Option<&Assertion>, slack: u32) -> u32 {
    let d1 = a.body.temporal_depth() + a.body.sampled_depth();
    let d2 = b.map_or(0, |b| b.body.temporal_depth() + b.body.sampled_depth());
    let unbounded = a.body.has_unbounded() || b.is_some_and(|b| b.body.has_unbounded());
    d1.max(d2) + if unbounded { slack.max(1) } else { 1 } + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::FreeTraceEnv;
    use crate::table::SignalTable;
    use fv_aig::CnfEmitter;
    use fv_sat::Solver;
    use sv_parser::parse_assertion_str;

    fn table() -> SignalTable {
        [("a", 1u32), ("b", 1), ("c", 1), ("tb_reset", 1)]
            .into_iter()
            .collect()
    }

    /// SAT-checks whether the assertion can be violated within `horizon`.
    fn violable(src: &str, horizon: u32) -> bool {
        let a = parse_assertion_str(src).unwrap();
        let t = table();
        let mut g = Aig::new();
        let mut env = FreeTraceEnv::new(&t);
        let holds = encode_assertion(&mut g, &a, horizon, &mut env).unwrap();
        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let l = em.emit(&g, !holds, &mut s);
        s.solve_with(&[l]).is_sat()
    }

    #[test]
    fn tautological_property_never_violated() {
        assert!(!violable("assert property (@(posedge clk) a || !a);", 4));
    }

    #[test]
    fn plain_boolean_is_violable() {
        assert!(violable("assert property (@(posedge clk) a);", 4));
    }

    #[test]
    fn implication_with_exact_delay() {
        // a |-> ##1 a is violable; a |-> ##0 a is not.
        assert!(violable("assert property (@(posedge clk) a |-> ##1 a);", 4));
        assert!(!violable(
            "assert property (@(posedge clk) a |-> ##[0:0] a);",
            4
        ));
    }

    #[test]
    fn weak_unbounded_delay_never_fails() {
        // Weak eventuality can always be deferred past the horizon.
        assert!(!violable(
            "assert property (@(posedge clk) a |-> ##[1:$] b);",
            5
        ));
    }

    #[test]
    fn strong_unbounded_delay_fails_if_unmet() {
        assert!(violable(
            "assert property (@(posedge clk) a |-> strong(##[1:$] b));",
            5
        ));
    }

    #[test]
    fn s_eventually_is_strong() {
        assert!(violable(
            "assert property (@(posedge clk) s_eventually (b));",
            4
        ));
        // But `b or !b` eventually holds trivially.
        assert!(!violable(
            "assert property (@(posedge clk) s_eventually (b || !b));",
            4
        ));
    }

    #[test]
    fn disable_iff_discharges() {
        // Body is plainly violable, but `disable iff (1)`... we model a
        // free `tb_reset`; violation requires tb_reset low throughout.
        assert!(violable(
            "assert property (@(posedge clk) disable iff (tb_reset) a);",
            3
        ));
        // With the disable expression constant-true it can never fail.
        let t: SignalTable = [("a", 1u32)].into_iter().collect();
        let a =
            parse_assertion_str("assert property (@(posedge clk) disable iff (1'b1) a);").unwrap();
        let mut g = Aig::new();
        let mut env = FreeTraceEnv::new(&t);
        let holds = encode_assertion(&mut g, &a, 3, &mut env).unwrap();
        assert_eq!(holds, AigLit::TRUE);
    }

    #[test]
    fn nonoverlap_equals_overlap_shifted() {
        // a |=> b vs a |-> ##1 b must be equi-violable per trace.
        let t = table();
        let a1 = parse_assertion_str("assert property (@(posedge clk) a |=> b);").unwrap();
        let a2 = parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
        let mut g = Aig::new();
        let mut env = FreeTraceEnv::new(&t);
        let h1 = encode_assertion(&mut g, &a1, 4, &mut env).unwrap();
        let h2 = encode_assertion(&mut g, &a2, 4, &mut env).unwrap();
        let diff = g.xor(h1, h2);
        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let l = em.emit(&g, diff, &mut s);
        assert!(s.solve_with(&[l]).is_unsat());
    }

    #[test]
    fn repeat_three_means_three_cycles() {
        // a[*3] |-> b : violable; needs a,a,a then !b.
        assert!(violable("assert property (@(posedge clk) a[*3] |-> b);", 6));
        // a[*3] |-> a : not violable (last repetition overlaps b's cycle).
        assert!(!violable(
            "assert property (@(posedge clk) a[*3] |-> a);",
            6
        ));
    }

    #[test]
    fn until_weak_vs_strong() {
        // Weak until with lhs tautology never fails.
        assert!(!violable(
            "assert property (@(posedge clk) (a || !a) until b);",
            4
        ));
        // Strong until demands rhs within the window.
        assert!(violable(
            "assert property (@(posedge clk) (a || !a) s_until b);",
            4
        ));
    }

    #[test]
    fn horizon_for_depths() {
        let a = parse_assertion_str("assert property (@(posedge clk) a |-> ##3 b);").unwrap();
        let h = horizon_for(&a, None, 4);
        assert!(h >= 5, "needs at least antecedent + 3 + check, got {h}");
        let unb = parse_assertion_str("assert property (@(posedge clk) a |-> strong(##[0:$] b));")
            .unwrap();
        assert!(horizon_for(&unb, None, 4) >= 5);
    }

    #[test]
    fn throughout_guard_must_hold() {
        // (b throughout (a ##2 a)) |-> c : requires b on all 3 cycles.
        assert!(violable(
            "assert property (@(posedge clk) (b throughout (a ##2 a)) |-> c);",
            6
        ));
        // Guard failure vacuously satisfies the implication.
        assert!(!violable(
            "assert property (@(posedge clk) ((!b && b) throughout (a ##2 a)) |-> c);",
            6
        ));
    }
}
