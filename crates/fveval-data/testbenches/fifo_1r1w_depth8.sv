// NL2SVA-Human collateral: 1R1W FIFO occupancy model (depth 8).
//
// Control-path-only variant: the dataset's assertions for this
// testbench reason about pointers and occupancy, so no data storage is
// modeled.
module fifo_1r1w_depth8_tb (
    input clk,
    input reset_,
    input wr_vld,
    input wr_ready,
    input rd_vld,
    input rd_ready
);
  parameter FIFO_DEPTH = 8;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  wire wr_push;
  wire rd_pop;
  assign wr_push = wr_vld && wr_ready;
  assign rd_pop = rd_vld && rd_ready;

  reg [2:0] fifo_wr_ptr;
  reg [2:0] fifo_rd_ptr;
  reg [3:0] fifo_count;

  wire fifo_empty;
  wire fifo_full;
  assign fifo_empty = (fifo_count == 4'd0);
  assign fifo_full = (fifo_count == 4'd8);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      fifo_wr_ptr <= 3'd0;
      fifo_rd_ptr <= 3'd0;
      fifo_count <= 4'd0;
    end else begin
      if (wr_push) fifo_wr_ptr <= fifo_wr_ptr + 3'd1;
      if (rd_pop) fifo_rd_ptr <= fifo_rd_ptr + 3'd1;
      if (wr_push && !rd_pop) fifo_count <= fifo_count + 4'd1;
      if (!wr_push && rd_pop) fifo_count <= fifo_count - 4'd1;
    end
  end
endmodule
