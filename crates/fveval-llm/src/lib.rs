//! Simulated language models for FVEval.
//!
//! The paper evaluates eight proprietary/open LLM endpoints. This
//! reproduction replaces them with deterministic, seeded *simulated
//! models*: each [`ModelProfile`] is a calibrated noisy channel that
//! takes the task's hidden reference solution (or the design's
//! transition structure) and emits a response drawn from a per-model
//! outcome distribution — exact, semantically-equivalent rewrite,
//! one-way-implication variant, plausible-but-wrong edit, or an SVA
//! syntax hallucination (`eventually`, broken operators, unknown
//! signals).
//!
//! The crucial property: responses are *text*, and the harness scores
//! them with the real evaluation pipeline (parser, formal equivalence,
//! model checker, BLEU), so every number in the reproduced tables is
//! measured, not asserted. Profiles are calibrated so the measured
//! tables reproduce the paper's *shape* (model ordering, the
//! syntax≫functional gap, the partial>full gap, ICL gains and
//! small-model ICL regressions, pass@k lift under sampling).

mod d2s;
mod profile;
mod transform;

pub use profile::{
    profiles, Backend, DesignDist, InferenceConfig, ModelProfile, OutcomeDist, Request,
    SimulatedModel, TaskSpec,
};

/// Stable FNV-1a hash used for all deterministic pseudo-randomness.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic splittable RNG over the FNV hash.
#[derive(Debug, Clone)]
pub(crate) struct DetRng {
    state: u64,
}

impl DetRng {
    pub fn from_parts(parts: &[&str]) -> DetRng {
        let joined = parts.join("\u{1f}");
        DetRng {
            state: fnv1a(joined.as_bytes()).max(1),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64: full-avalanche mixing even for correlated seeds.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"fveval"), fnv1a(b"fveval"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn detrng_deterministic_and_uniform_ish() {
        let mut a = DetRng::from_parts(&["model", "case"]);
        let mut b = DetRng::from_parts(&["model", "case"]);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = DetRng::from_parts(&["model", "other"]);
        assert_ne!(c.next_u64(), xs[0]);
        // unit() stays in range.
        for _ in 0..1000 {
            let u = a.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
