//! Design2SVA: parameterized synthetic RTL generators.
//!
//! Two categories mirror the paper's Figure 4: **arithmetic pipelines**
//! (randomized execution units chained through a valid/data shift
//! structure, exercising hierarchy and generate loops) and **FSMs**
//! (randomized state graphs with input-guarded transitions). Designs are
//! constructed as ASTs, printed to concrete SystemVerilog, and proven
//! against their golden assertions by the repository's own engine
//! (tested), guaranteeing criterion (1) of the paper: provable
//! properties exist.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_ast::{
    print_module, Assign, BinaryOp, EdgeKind, EventExpr, Expr, Instance, LValue, Literal, Module,
    ModuleItem, NetDecl, NetKind, ParamDecl, PortDecl, PortDir, Range, Stmt,
};

/// Category of a generated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignKind {
    /// Arithmetic pipeline with the given total register depth.
    Pipeline {
        /// Total latency from `in_vld` to `out_vld`.
        total_depth: u32,
    },
    /// FSM with its transition graph: `transitions[s]` is the successor
    /// set of state `s`.
    Fsm {
        /// Number of states.
        n_states: u32,
        /// Encoded state width.
        state_width: u32,
        /// Successor sets.
        transitions: Vec<Vec<u32>>,
    },
    /// A generated scenario from the `fveval-gen` subsystem (FIFO,
    /// arbiter, handshake, gray counter, shift register, CRC pipeline).
    /// Provable goldens live in [`DesignCase::golden`]; this variant
    /// carries what simulated models additionally need to reproduce the
    /// paper's failure modes.
    Scenario {
        /// Family registry key (`fifo`, `arbiter`, ...).
        family: String,
        /// Plausible-but-falsifiable assertions (golden verdict: a
        /// reachable counterexample exists).
        falsifiable: Vec<String>,
        /// A design-internal net that is not testbench-visible (the
        /// paper's internal-signal failure mode).
        internal_signal: String,
    },
}

/// One generated Design2SVA test instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignCase {
    /// Unique id, e.g. `pipeline_nu_2_d_4_w_16_0` (paper-style ids).
    pub id: String,
    /// The design RTL (all modules).
    pub design_source: String,
    /// The testbench header shown to models.
    pub tb_source: String,
    /// Design top module name.
    pub top: String,
    /// Testbench module name.
    pub tb_top: String,
    /// Assertions known provable on this design (golden references).
    pub golden: Vec<String>,
    /// The randomly generated logic excerpt (for Figure 4 token stats).
    pub logic_excerpt: String,
    /// Category data.
    pub kind: DesignKind,
}

/// Pipeline generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineParams {
    /// Number of execution units chained.
    pub n_units: u32,
    /// Register depth of each unit.
    pub unit_depths: Vec<u32>,
    /// Data width.
    pub width: u32,
    /// Number of random operations in each unit's datapath expression.
    pub expr_ops: u32,
    /// RNG seed.
    pub seed: u64,
}

/// FSM generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmParams {
    /// Number of states (>= 2).
    pub n_states: u32,
    /// Number of extra transition edges beyond a connected backbone.
    pub n_edges: u32,
    /// Input signal width.
    pub width: u32,
    /// Depth of random guard expressions.
    pub guard_depth: u32,
    /// RNG seed.
    pub seed: u64,
}

fn num(v: u128) -> Expr {
    Expr::num(v)
}

fn ident(s: &str) -> Expr {
    Expr::ident(s)
}

fn input_port(name: &str, range: Option<Range>) -> PortDecl {
    PortDecl {
        dir: PortDir::Input,
        range,
        is_reg: false,
        name: name.to_string(),
    }
}

fn output_port(name: &str, range: Option<Range>) -> PortDecl {
    PortDecl {
        dir: PortDir::Output,
        range,
        is_reg: false,
        name: name.to_string(),
    }
}

/// Builds a random unary datapath update `f(x)` as an expression over
/// the placeholder identifier `x`, using the paper's operation set
/// (`^ + - <<< >>> & |` with small constants).
fn random_datapath_expr(rng: &mut StdRng, ops: u32) -> Expr {
    let mut e = ident("x");
    for _ in 0..ops {
        let k = rng.gen_range(1..=9u128);
        e = match rng.gen_range(0..7) {
            0 => Expr::bin(BinaryOp::BitXor, e, num(k)),
            1 => Expr::bin(BinaryOp::Add, e, num(k)),
            2 => Expr::bin(BinaryOp::Sub, e, num(k)),
            3 => Expr::bin(BinaryOp::AShl, e, num(k.min(7))),
            4 => Expr::bin(BinaryOp::AShr, e, num(k.min(7))),
            5 => Expr::bin(BinaryOp::BitAnd, e, num((1 << k.min(8)) - 1)),
            _ => Expr::bin(BinaryOp::BitOr, e, num(k)),
        };
    }
    e
}

fn subst_x(e: &Expr, with: &Expr) -> Expr {
    match e {
        Expr::Ident(n) if n == "x" => with.clone(),
        Expr::Ident(_) | Expr::Literal(_) => e.clone(),
        Expr::Unary(op, i) => Expr::Unary(*op, Box::new(subst_x(i, with))),
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, Box::new(subst_x(a, with)), Box::new(subst_x(b, with)))
        }
        Expr::Ternary(c, t, f) => Expr::Ternary(
            Box::new(subst_x(c, with)),
            Box::new(subst_x(t, with)),
            Box::new(subst_x(f, with)),
        ),
        Expr::Concat(es) => Expr::Concat(es.iter().map(|x| subst_x(x, with)).collect()),
        Expr::Replicate(n, i) => {
            Expr::Replicate(Box::new(subst_x(n, with)), Box::new(subst_x(i, with)))
        }
        Expr::Index(b, i) => Expr::Index(Box::new(subst_x(b, with)), Box::new(subst_x(i, with))),
        Expr::Slice(b, h, l) => Expr::Slice(
            Box::new(subst_x(b, with)),
            Box::new(subst_x(h, with)),
            Box::new(subst_x(l, with)),
        ),
        Expr::SysCall(f, args) => {
            Expr::SysCall(*f, args.iter().map(|x| subst_x(x, with)).collect())
        }
    }
}

/// Builds one `exec_unit_<i>` module.
fn exec_unit_module(index: u32, depth: u32, update: &Expr) -> Module {
    let w1 = || Some(Range::new(ident("WIDTH").clone().sub1(), num(0)));
    // helper trait-free: WIDTH-1 expression
    fn wm1() -> Option<Range> {
        Some(Range::new(
            Expr::bin(BinaryOp::Sub, ident("WIDTH"), num(1)),
            num(0),
        ))
    }
    let _ = w1;
    let data_update = subst_x(
        update,
        &Expr::Index(Box::new(ident("data")), Box::new(ident("i"))),
    );
    let body = Stmt::If {
        cond: ident("reset_").lnot(),
        then: Box::new(Stmt::Block(vec![
            Stmt::NonBlocking(
                LValue::Index("ready".into(), Expr::bin(BinaryOp::Add, ident("i"), num(1))),
                Expr::Literal(Literal::tick_d(0)),
            ),
            Stmt::NonBlocking(
                LValue::Index("data".into(), Expr::bin(BinaryOp::Add, ident("i"), num(1))),
                Expr::Literal(Literal::tick_d(0)),
            ),
        ])),
        alt: Some(Box::new(Stmt::Block(vec![
            Stmt::NonBlocking(
                LValue::Index("ready".into(), Expr::bin(BinaryOp::Add, ident("i"), num(1))),
                Expr::Index(Box::new(ident("ready")), Box::new(ident("i"))),
            ),
            Stmt::NonBlocking(
                LValue::Index("data".into(), Expr::bin(BinaryOp::Add, ident("i"), num(1))),
                data_update,
            ),
        ]))),
    };
    Module {
        name: format!("exec_unit_{index}"),
        params: vec![
            ParamDecl {
                local: false,
                name: "WIDTH".into(),
                value: num(8),
            },
            ParamDecl {
                local: true,
                name: "DEPTH".into(),
                value: num(u128::from(depth)),
            },
        ],
        port_order: vec![
            "clk".into(),
            "reset_".into(),
            "in_data".into(),
            "in_vld".into(),
            "out_data".into(),
            "out_vld".into(),
        ],
        ports: vec![
            input_port("clk", None),
            input_port("reset_", None),
            input_port("in_data", wm1()),
            input_port("in_vld", None),
            output_port("out_data", wm1()),
            output_port("out_vld", None),
        ],
        items: vec![
            ModuleItem::Net(NetDecl {
                kind: NetKind::Logic,
                packed: vec![Range::new(ident("DEPTH"), num(0))],
                name: "ready".into(),
                unpacked: vec![],
                init: None,
            }),
            ModuleItem::Net(NetDecl {
                kind: NetKind::Logic,
                packed: vec![
                    Range::new(ident("DEPTH"), num(0)),
                    Range::new(Expr::bin(BinaryOp::Sub, ident("WIDTH"), num(1)), num(0)),
                ],
                name: "data".into(),
                unpacked: vec![],
                init: None,
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Index("ready".into(), num(0)),
                rhs: ident("in_vld"),
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Index("data".into(), num(0)),
                rhs: ident("in_data"),
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Ident("out_vld".into()),
                rhs: Expr::Index(Box::new(ident("ready")), Box::new(ident("DEPTH"))),
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Ident("out_data".into()),
                rhs: Expr::Index(Box::new(ident("data")), Box::new(ident("DEPTH"))),
            }),
            ModuleItem::GenerateFor {
                var: "i".into(),
                init: num(0),
                cond: Expr::bin(BinaryOp::Lt, ident("i"), ident("DEPTH")),
                step: Expr::bin(BinaryOp::Add, ident("i"), num(1)),
                label: Some("gen".into()),
                body: vec![ModuleItem::AlwaysAt {
                    events: vec![EventExpr {
                        edge: EdgeKind::Pos,
                        signal: "clk".into(),
                    }],
                    body,
                }],
            },
        ],
    }
}

// A tiny helper so the closure above stays readable.
trait Sub1 {
    fn sub1(self) -> Expr;
}
impl Sub1 for Expr {
    fn sub1(self) -> Expr {
        Expr::bin(BinaryOp::Sub, self, num(1))
    }
}

/// Generates an arithmetic-pipeline design (paper Appendix C.1 shape).
pub fn generate_pipeline(params: &PipelineParams) -> DesignCase {
    let mut rng = StdRng::seed_from_u64(params.seed);
    assert_eq!(
        params.unit_depths.len(),
        params.n_units as usize,
        "one depth per unit"
    );
    let total_depth: u32 = params.unit_depths.iter().sum();
    let width = params.width;

    let mut modules = Vec::new();
    let mut updates = Vec::new();
    for (i, &d) in params.unit_depths.iter().enumerate() {
        let update = random_datapath_expr(&mut rng, params.expr_ops);
        modules.push(exec_unit_module(i as u32, d, &update));
        updates.push(update);
    }

    // Top-level pipeline module.
    fn wm1() -> Option<Range> {
        Some(Range::new(
            Expr::bin(BinaryOp::Sub, ident("WIDTH"), num(1)),
            num(0),
        ))
    }
    let mut items = vec![
        ModuleItem::Net(NetDecl {
            kind: NetKind::Wire,
            packed: vec![Range::new(ident("DEPTH"), num(0))],
            name: "ready".into(),
            unpacked: vec![],
            init: None,
        }),
        ModuleItem::Net(NetDecl {
            kind: NetKind::Wire,
            packed: vec![
                Range::new(ident("DEPTH"), num(0)),
                Range::new(Expr::bin(BinaryOp::Sub, ident("WIDTH"), num(1)), num(0)),
            ],
            name: "data".into(),
            unpacked: vec![],
            init: None,
        }),
        ModuleItem::ContAssign(Assign {
            lhs: LValue::Index("ready".into(), num(0)),
            rhs: ident("in_vld"),
        }),
        ModuleItem::ContAssign(Assign {
            lhs: LValue::Index("data".into(), num(0)),
            rhs: ident("in_data"),
        }),
        ModuleItem::ContAssign(Assign {
            lhs: LValue::Ident("out_vld".into()),
            rhs: Expr::Index(Box::new(ident("ready")), Box::new(ident("DEPTH"))),
        }),
        ModuleItem::ContAssign(Assign {
            lhs: LValue::Ident("out_data".into()),
            rhs: Expr::Index(Box::new(ident("data")), Box::new(ident("DEPTH"))),
        }),
    ];
    let mut cum = 0u32;
    for (i, &d) in params.unit_depths.iter().enumerate() {
        let lo = cum;
        cum += d;
        items.push(ModuleItem::Instance(Instance {
            module: format!("exec_unit_{i}"),
            name: format!("unit_{i}"),
            params: vec![("WIDTH".into(), ident("WIDTH"))],
            conns: vec![
                ("clk".into(), ident("clk")),
                ("reset_".into(), ident("reset_")),
                (
                    "in_data".into(),
                    Expr::Index(Box::new(ident("data")), Box::new(num(u128::from(lo)))),
                ),
                (
                    "in_vld".into(),
                    Expr::Index(Box::new(ident("ready")), Box::new(num(u128::from(lo)))),
                ),
                (
                    "out_data".into(),
                    Expr::Index(Box::new(ident("data")), Box::new(num(u128::from(cum)))),
                ),
                (
                    "out_vld".into(),
                    Expr::Index(Box::new(ident("ready")), Box::new(num(u128::from(cum)))),
                ),
            ],
        }));
    }
    let pipeline = Module {
        name: "pipeline".into(),
        params: vec![
            ParamDecl {
                local: false,
                name: "WIDTH".into(),
                value: num(u128::from(width)),
            },
            ParamDecl {
                local: false,
                name: "DEPTH".into(),
                value: num(u128::from(total_depth)),
            },
        ],
        port_order: vec![
            "clk".into(),
            "reset_".into(),
            "in_vld".into(),
            "in_data".into(),
            "out_vld".into(),
            "out_data".into(),
        ],
        ports: vec![
            input_port("clk", None),
            input_port("reset_", None),
            input_port("in_vld", None),
            input_port("in_data", wm1()),
            output_port("out_vld", None),
            output_port("out_data", wm1()),
        ],
        items,
    };

    let mut design_source = String::new();
    for m in &modules {
        design_source.push_str(&print_module(m));
        design_source.push('\n');
    }
    design_source.push_str(&print_module(&pipeline));

    // Testbench header: all design ports declared as inputs.
    let tb = Module {
        name: "pipeline_tb".into(),
        params: vec![
            ParamDecl {
                local: false,
                name: "WIDTH".into(),
                value: num(u128::from(width)),
            },
            ParamDecl {
                local: false,
                name: "DEPTH".into(),
                value: num(u128::from(total_depth)),
            },
        ],
        port_order: pipeline.port_order.clone(),
        ports: pipeline
            .ports
            .iter()
            .map(|p| PortDecl {
                dir: PortDir::Input,
                range: p.range.clone(),
                is_reg: false,
                name: p.name.clone(),
            })
            .collect(),
        items: vec![
            ModuleItem::Net(NetDecl {
                kind: NetKind::Wire,
                packed: vec![],
                name: "tb_reset".into(),
                unpacked: vec![],
                init: None,
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Ident("tb_reset".into()),
                rhs: Expr::bin(
                    BinaryOp::Eq,
                    ident("reset_"),
                    Expr::Literal(Literal::sized_bin(1, 0)),
                ),
            }),
        ],
    };
    let tb_source = print_module(&tb);

    let golden = vec![
        format!(
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             in_vld |-> ##{total_depth} out_vld);"
        ),
        "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
         (!in_vld) |-> ##DEPTHX 1'b1);"
            .replace(
                "##DEPTHX 1'b1",
                &format!("##{total_depth} (out_vld || !out_vld)"),
            ),
    ];

    let logic_excerpt = updates
        .iter()
        .map(sv_ast::print_expr)
        .collect::<Vec<_>>()
        .join(";\n");

    DesignCase {
        id: format!(
            "pipeline_nu_{}_d_{}_w_{}_{:x}",
            params.n_units, total_depth, width, params.seed
        ),
        design_source,
        tb_source,
        top: "pipeline".into(),
        tb_top: "pipeline_tb".into(),
        golden,
        logic_excerpt,
        kind: DesignKind::Pipeline { total_depth },
    }
}

/// Builds a random guard expression over the FSM inputs.
fn random_guard(rng: &mut StdRng, depth: u32) -> Expr {
    let inputs = ["in_A", "in_B", "in_C", "in_D"];
    let atom = |rng: &mut StdRng| -> Expr {
        let a = inputs[rng.gen_range(0..inputs.len())];
        match rng.gen_range(0..4) {
            0 => {
                // Distinct signals so the guard is never constant-false.
                let mut b = inputs[rng.gen_range(0..inputs.len())];
                while b == a {
                    b = inputs[rng.gen_range(0..inputs.len())];
                }
                Expr::bin(BinaryOp::Neq, ident(a), ident(b))
            }
            1 => {
                let k = rng.gen_range(0..4u128);
                Expr::bin(BinaryOp::Le, ident(a), Expr::Literal(Literal::tick_d(k)))
            }
            2 => Expr::Unary(sv_ast::UnaryOp::RedXor, Box::new(ident(a))),
            _ => {
                let k = rng.gen_range(0..4u128);
                Expr::bin(BinaryOp::Eq, ident(a), Expr::Literal(Literal::tick_d(k)))
            }
        }
    };
    let mut e = atom(rng);
    for _ in 1..depth.max(1) {
        let rhs = atom(rng);
        e = if rng.gen_bool(0.5) {
            e.land(rhs)
        } else {
            e.lor(rhs)
        };
    }
    e
}

/// Generates an FSM design (paper Appendix C.1 shape).
pub fn generate_fsm(params: &FsmParams) -> DesignCase {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = params.n_states.max(2);
    let state_width = 32 - (n - 1).leading_zeros().max(1);
    let state_width = state_width.max(1);

    // Transition graph: a connected ring backbone plus random edges.
    let mut succs: Vec<Vec<u32>> = (0..n).map(|s| vec![(s + 1) % n]).collect();
    for _ in 0..params.n_edges {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        if !succs[from as usize].contains(&to) {
            succs[from as usize].push(to);
        }
    }

    // Case arms: guarded if/else chains over the successor list.
    let mut arms: Vec<(Vec<Expr>, Stmt)> = Vec::new();
    let mut guard_texts = Vec::new();
    for s in 0..n {
        let list = &succs[s as usize];
        let mut stmt = Stmt::Blocking(
            LValue::Ident("next_state".into()),
            ident(&format!("S{}", list[list.len() - 1])),
        );
        for (gi, &t) in list.iter().enumerate().rev().skip(1) {
            let guard = random_guard(&mut rng, params.guard_depth);
            guard_texts.push(sv_ast::print_expr(&guard));
            let _ = gi;
            stmt = Stmt::If {
                cond: guard,
                then: Box::new(Stmt::Blocking(
                    LValue::Ident("next_state".into()),
                    ident(&format!("S{t}")),
                )),
                alt: Some(Box::new(stmt)),
            };
        }
        arms.push((vec![ident(&format!("S{s}"))], stmt));
    }

    fn wrange() -> Option<Range> {
        Some(Range::new(
            Expr::bin(BinaryOp::Sub, ident("WIDTH"), num(1)),
            num(0),
        ))
    }
    fn frange() -> Option<Range> {
        Some(Range::new(
            Expr::bin(BinaryOp::Sub, ident("FSM_WIDTH"), num(1)),
            num(0),
        ))
    }
    let mut fsm_params = vec![
        ParamDecl {
            local: false,
            name: "WIDTH".into(),
            value: num(u128::from(params.width)),
        },
        ParamDecl {
            local: false,
            name: "FSM_WIDTH".into(),
            value: num(u128::from(state_width)),
        },
    ];
    for s in 0..n {
        fsm_params.push(ParamDecl {
            local: false,
            name: format!("S{s}"),
            value: num(u128::from(s)),
        });
    }

    let module = Module {
        name: "fsm".into(),
        params: fsm_params.clone(),
        port_order: vec![
            "clk".into(),
            "reset_".into(),
            "in_A".into(),
            "in_B".into(),
            "in_C".into(),
            "in_D".into(),
            "fsm_out".into(),
        ],
        ports: vec![
            input_port("clk", None),
            input_port("reset_", None),
            input_port("in_A", wrange()),
            input_port("in_B", wrange()),
            input_port("in_C", wrange()),
            input_port("in_D", wrange()),
            output_port("fsm_out", frange()),
        ],
        items: vec![
            ModuleItem::Net(NetDecl {
                kind: NetKind::Reg,
                packed: vec![Range::new(
                    Expr::bin(BinaryOp::Sub, ident("FSM_WIDTH"), num(1)),
                    num(0),
                )],
                name: "state".into(),
                unpacked: vec![],
                init: None,
            }),
            ModuleItem::Net(NetDecl {
                kind: NetKind::Reg,
                packed: vec![Range::new(
                    Expr::bin(BinaryOp::Sub, ident("FSM_WIDTH"), num(1)),
                    num(0),
                )],
                name: "next_state".into(),
                unpacked: vec![],
                init: None,
            }),
            ModuleItem::AlwaysFf {
                events: vec![
                    EventExpr {
                        edge: EdgeKind::Pos,
                        signal: "clk".into(),
                    },
                    EventExpr {
                        edge: EdgeKind::Neg,
                        signal: "reset_".into(),
                    },
                ],
                body: Stmt::If {
                    cond: ident("reset_").lnot(),
                    then: Box::new(Stmt::NonBlocking(
                        LValue::Ident("state".into()),
                        ident("S0"),
                    )),
                    alt: Some(Box::new(Stmt::NonBlocking(
                        LValue::Ident("state".into()),
                        ident("next_state"),
                    ))),
                },
            },
            ModuleItem::AlwaysComb(Stmt::Case {
                subject: ident("state"),
                arms,
                default: Some(Box::new(Stmt::Blocking(
                    LValue::Ident("next_state".into()),
                    ident("S0"),
                ))),
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Ident("fsm_out".into()),
                rhs: ident("state"),
            }),
        ],
    };
    let design_source = print_module(&module);

    let tb = Module {
        name: "fsm_tb".into(),
        params: fsm_params,
        port_order: module.port_order.clone(),
        ports: module
            .ports
            .iter()
            .map(|p| PortDecl {
                dir: PortDir::Input,
                range: p.range.clone(),
                is_reg: false,
                name: p.name.clone(),
            })
            .collect(),
        items: vec![
            ModuleItem::Net(NetDecl {
                kind: NetKind::Wire,
                packed: vec![],
                name: "tb_reset".into(),
                unpacked: vec![],
                init: None,
            }),
            ModuleItem::ContAssign(Assign {
                lhs: LValue::Ident("tb_reset".into()),
                rhs: Expr::bin(
                    BinaryOp::Eq,
                    ident("reset_"),
                    Expr::Literal(Literal::sized_bin(1, 0)),
                ),
            }),
        ],
    };
    let tb_source = print_module(&tb);

    // Golden: one transition assertion per state (successor coverage).
    let golden: Vec<String> = (0..n)
        .map(|s| {
            let disj = succs[s as usize]
                .iter()
                .map(|t| format!("(fsm_out == S{t})"))
                .collect::<Vec<_>>()
                .join(" || ");
            format!(
                "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
                 (fsm_out == S{s}) |-> ##1 ({disj}));"
            )
        })
        .collect();

    DesignCase {
        id: format!(
            "fsm_nn_{}_ne_{}_wd_{}_{:x}",
            n, params.n_edges, params.width, params.seed
        ),
        design_source,
        tb_source,
        top: "fsm".into(),
        tb_top: "fsm_tb".into(),
        golden,
        logic_excerpt: guard_texts.join(";\n"),
        kind: DesignKind::Fsm {
            n_states: n,
            state_width,
            transitions: succs,
        },
    }
}

/// The controlled parameter sweep for pipelines (paper: 96 instances).
pub fn pipeline_sweep(count: usize, seed: u64) -> Vec<DesignCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let n_units_options = [1u32, 2, 3];
    let width_options = [8u32, 16, 32, 64];
    let ops_options = [1u32, 2, 4, 6];
    let mut i = 0;
    'outer: for &w in &width_options {
        for &nu in &n_units_options {
            for &ops in &ops_options {
                for _rep in 0..2 {
                    if i >= count {
                        break 'outer;
                    }
                    let depths: Vec<u32> = (0..nu).map(|_| rng.gen_range(1..=3u32)).collect();
                    out.push(generate_pipeline(&PipelineParams {
                        n_units: nu,
                        unit_depths: depths,
                        width: w,
                        expr_ops: ops,
                        seed: rng.gen(),
                    }));
                    i += 1;
                }
            }
        }
    }
    while out.len() < count {
        let nu = n_units_options[rng.gen_range(0..n_units_options.len())];
        let depths: Vec<u32> = (0..nu).map(|_| rng.gen_range(1..=3u32)).collect();
        out.push(generate_pipeline(&PipelineParams {
            n_units: nu,
            unit_depths: depths,
            width: width_options[rng.gen_range(0..width_options.len())],
            expr_ops: ops_options[rng.gen_range(0..ops_options.len())],
            seed: rng.gen(),
        }));
    }
    out.truncate(count);
    out
}

/// The controlled parameter sweep for FSMs (paper: 96 instances).
pub fn fsm_sweep(count: usize, seed: u64) -> Vec<DesignCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let state_options = [3u32, 4, 5, 6, 8];
    let width_options = [8u32, 16, 32];
    let depth_options = [1u32, 2, 3];
    let mut i = 0;
    'outer: for &ns in &state_options {
        for &w in &width_options {
            for &gd in &depth_options {
                for _rep in 0..2 {
                    if i >= count {
                        break 'outer;
                    }
                    out.push(generate_fsm(&FsmParams {
                        n_states: ns,
                        n_edges: rng.gen_range(ns / 2..=ns + 2),
                        width: w,
                        guard_depth: gd,
                        seed: rng.gen(),
                    }));
                    i += 1;
                }
            }
        }
    }
    while out.len() < count {
        out.push(generate_fsm(&FsmParams {
            n_states: state_options[rng.gen_range(0..state_options.len())],
            n_edges: rng.gen_range(2..8),
            width: width_options[rng.gen_range(0..width_options.len())],
            guard_depth: depth_options[rng.gen_range(0..depth_options.len())],
            seed: rng.gen(),
        }));
    }
    out.truncate(count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::parse_source;
    use sv_synth::elaborate;

    #[test]
    fn pipeline_generates_parseable_rtl() {
        let case = generate_pipeline(&PipelineParams {
            n_units: 2,
            unit_depths: vec![2, 1],
            width: 8,
            expr_ops: 3,
            seed: 42,
        });
        let f = parse_source(&case.design_source)
            .unwrap_or_else(|e| panic!("{e}\n{}", case.design_source));
        let nl = elaborate(&f, &case.top).unwrap_or_else(|e| panic!("{e}"));
        assert!(nl.regs().count() >= 3, "pipeline has registers");
        assert!(parse_source(&case.tb_source).is_ok());
    }

    #[test]
    fn fsm_generates_parseable_rtl() {
        let case = generate_fsm(&FsmParams {
            n_states: 4,
            n_edges: 4,
            width: 16,
            guard_depth: 2,
            seed: 7,
        });
        let f = parse_source(&case.design_source)
            .unwrap_or_else(|e| panic!("{e}\n{}", case.design_source));
        let nl = elaborate(&f, &case.top).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(nl.reset_name.as_deref(), Some("reset_"));
        match &case.kind {
            DesignKind::Fsm { transitions, .. } => {
                assert_eq!(transitions.len(), 4);
                for s in transitions {
                    assert!(!s.is_empty(), "every state has a successor");
                }
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn sweeps_have_requested_sizes_and_unique_ids() {
        let p = pipeline_sweep(24, 1);
        let f = fsm_sweep(24, 2);
        assert_eq!(p.len(), 24);
        assert_eq!(f.len(), 24);
        let mut ids: Vec<&str> = p.iter().chain(f.iter()).map(|c| c.id.as_str()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "unique ids");
    }

    #[test]
    fn sweep_designs_all_elaborate() {
        for case in pipeline_sweep(8, 3).into_iter().chain(fsm_sweep(8, 4)) {
            let f =
                parse_source(&case.design_source).unwrap_or_else(|e| panic!("{}: {e}", case.id));
            elaborate(&f, &case.top).unwrap_or_else(|e| panic!("{}: {e}", case.id));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = fsm_sweep(6, 99);
        let b = fsm_sweep(6, 99);
        assert_eq!(a, b);
    }
}
