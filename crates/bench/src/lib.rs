//! Shared helpers for the FVEval benchmark suite.
//!
//! The Criterion benches live in `benches/`:
//!
//! - `tables` — one benchmark per paper table/figure, timing the full
//!   regeneration pipeline (dataset + inference + formal scoring).
//! - `engine` — substrate micro-benchmarks (SAT, parser, equivalence,
//!   BMC scaling).
//! - `ablations` — design-choice studies: equivalence-horizon
//!   sensitivity, k-induction depth, structural hashing, and the
//!   formal-vs-simulation comparison motivating the paper's claim that
//!   lexical/simulation metrics are insufficient.

use fv_sat::{Lit, Solver, Var};

/// Builds a pigeonhole instance (n+1 pigeons into n holes — UNSAT),
/// the classic CDCL stress case.
pub fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let mut p = vec![vec![Lit::pos(Var(0)); n]; n + 1];
    for row in p.iter_mut() {
        for cell in row.iter_mut() {
            *cell = Lit::pos(s.new_var());
        }
    }
    for row in &p {
        s.add_clause(row.iter().copied());
    }
    #[allow(clippy::needless_range_loop)] // index math over two pigeons
    for j in 0..n {
        for i1 in 0..=n {
            for i2 in (i1 + 1)..=n {
                s.add_clause([!p[i1][j], !p[i2][j]]);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pigeonhole_is_unsat() {
        assert!(pigeonhole(4).solve().is_unsat());
    }
}
