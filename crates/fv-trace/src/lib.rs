//! Hierarchical span tracing and a process-wide metrics registry.
//!
//! This crate is the observability layer for the whole evaluation
//! spine. Like everything else in the workspace it is std-only: no
//! external dependencies, no global runtime, no background threads.
//! It has three parts:
//!
//! - **Spans** ([`span!`], [`SpanGuard`]) — an RAII guard that records
//!   a named region of work with monotonic start/end times, a parent
//!   link to the enclosing span on the same thread, and typed
//!   key/value attributes. When tracing is disabled (the default) a
//!   span site costs one relaxed atomic load — no clock read, no
//!   allocation.
//! - **Metrics** ([`metrics`]) — counters, gauges, and log2-bucket
//!   latency histograms behind stable dotted names
//!   (`span.sat.solve.us`, `serve.flushes`). Histogram recording is
//!   lock-free on the hot path: each thread owns a private shard of
//!   atomic buckets, and shards are merged when a [`metrics::Snapshot`]
//!   is taken.
//! - **Exporters** ([`chrome`], [`prometheus`]) — render collected
//!   spans as a Chrome-trace (`about://tracing`) JSON document, and
//!   render metrics in Prometheus text exposition format.
//!
//! Everything here is a *side channel*: spans and metrics observe the
//! result path but never feed back into it, so every byte-compared
//! results table stays identical with tracing on or off.
//!
//! ```
//! fv_trace::set_spans_enabled(true);
//! {
//!     let _outer = fv_trace::span!("elaborate", top = "fsm");
//!     let _inner = fv_trace::span!("sat.solve", vars = 42u64);
//! }
//! let spans = fv_trace::take_spans();
//! assert_eq!(spans.len(), 2);
//! fv_trace::set_spans_enabled(false);
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod prometheus;
mod span;

pub use span::{
    set_spans_enabled, set_timing_enabled, spans_enabled, take_spans, timing_enabled, AttrValue,
    SpanGuard, SpanRecord,
};

/// Opens a span over the enclosing scope and returns its RAII guard.
///
/// The first argument is the span name (a `&'static str`); the
/// remaining `key = value` pairs become typed attributes. Bind the
/// guard to a named variable (`let _span = span!(..)`) — binding to
/// `_` drops it immediately and records an empty span.
///
/// When neither span collection nor timing is enabled the expansion
/// performs a single relaxed atomic load and nothing else.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __fv_trace_guard = $crate::SpanGuard::enter($name);
        $(__fv_trace_guard.attr(stringify!($key), $val);)*
        __fv_trace_guard
    }};
}
