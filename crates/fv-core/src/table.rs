//! Signal width tables for free-trace (testbench) contexts.

use std::collections::HashMap;

/// Declared signals of a verification context: name to bit width.
///
/// For NL2SVA-Human this is extracted from the testbench's elaborated
/// netlist; for NL2SVA-Machine it is the generator's symbolic signal
/// table (`sig_A..sig_J` with their drawn widths).
///
/// # Examples
///
/// ```
/// use fv_core::SignalTable;
/// let mut t = SignalTable::new();
/// t.insert("rd_pop", 1);
/// t.insert("fifo_out_data", 8);
/// assert_eq!(t.width("rd_pop"), Some(1));
/// assert_eq!(t.width("ghost"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignalTable {
    widths: HashMap<String, u32>,
    /// Constant bindings (testbench parameters like FSM state encodings).
    consts: HashMap<String, (u32, u128)>,
}

impl SignalTable {
    /// Creates an empty table.
    pub fn new() -> SignalTable {
        SignalTable::default()
    }

    /// Declares a signal.
    pub fn insert(&mut self, name: impl Into<String>, width: u32) {
        self.widths.insert(name.into(), width);
    }

    /// Declares an elaboration-time constant (e.g. a state-encoding
    /// parameter `S0 = 2'b00`), visible to assertions by name.
    pub fn insert_const(&mut self, name: impl Into<String>, width: u32, value: u128) {
        self.consts.insert(name.into(), (width, value));
    }

    /// Width of a declared signal.
    pub fn width(&self, name: &str) -> Option<u32> {
        self.widths.get(name).copied()
    }

    /// Constant binding, if `name` is one.
    pub fn constant(&self, name: &str) -> Option<(u32, u128)> {
        self.consts.get(name).copied()
    }

    /// Iterates over declared signal names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.widths.keys().map(String::as_str)
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// Stable, order-independent content hash: two tables digest
    /// equally iff they declare the same signals, widths, and
    /// constants. Usable as a cache-key component.
    pub fn digest(&self) -> u64 {
        let entry = |parts: &[&[u8]]| -> u64 {
            let mut h: u64 = 0xcbf29ce484222325;
            for part in parts {
                for &b in *part {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100000001b3);
                }
                h ^= 0x1f;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        };
        // XOR-fold per-entry hashes so HashMap iteration order is
        // irrelevant.
        let mut acc = 0x9E3779B97F4A7C15u64 ^ (self.widths.len() as u64).rotate_left(32);
        for (name, w) in &self.widths {
            acc ^= entry(&[b"sig", name.as_bytes(), &w.to_le_bytes()]);
        }
        for (name, (w, v)) in &self.consts {
            acc ^= entry(&[
                b"const",
                name.as_bytes(),
                &w.to_le_bytes(),
                &v.to_le_bytes(),
            ]);
        }
        acc
    }

    /// `true` if no signals are declared.
    pub fn is_empty(&self) -> bool {
        self.widths.is_empty()
    }
}

impl<S: Into<String>> FromIterator<(S, u32)> for SignalTable {
    fn from_iter<T: IntoIterator<Item = (S, u32)>>(iter: T) -> SignalTable {
        let mut t = SignalTable::new();
        for (name, w) in iter {
            t.insert(name, w);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_iterator() {
        let t: SignalTable = [("a", 1u32), ("b", 8)].into_iter().collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.width("b"), Some(8));
    }

    #[test]
    fn constants_are_separate() {
        let mut t = SignalTable::new();
        t.insert_const("S0", 2, 0);
        assert_eq!(t.constant("S0"), Some((2, 0)));
        assert_eq!(t.width("S0"), None);
    }
}
