//! The formal-verification engine of the FVEval reproduction.
//!
//! This crate stands in for the commercial tool backend (Cadence Jasper
//! in the paper) in both roles the benchmark uses it for:
//!
//! - **Assertion-to-assertion equivalence** ([`check_equivalence`]):
//!   the paper's custom Jasper function that proves whether a
//!   model-generated SVA assertion is logically equivalent to the
//!   reference, or one-way implied (the *partial equivalence* metric).
//!   Implemented as H-bounded trace equivalence: both properties are
//!   compiled over a shared symbolic trace of free signals and two SAT
//!   queries decide `A∧¬B` / `B∧¬A`.
//! - **Model checking** ([`prove`]): whether an assertion is *proven*
//!   on a design (the Design2SVA functional metric), via BMC for
//!   counterexamples and k-induction for proofs over the bit-blasted
//!   netlist.
//!
//! Weak/strong finite-trace semantics follow LTLf conventions: weak
//! operators treat obligations pending at the horizon as satisfied,
//! strong ones as violated. For the bounded-delay properties that
//! dominate the benchmark this coincides with exact SVA semantics.

mod env;
mod equiv;
mod error;
mod expr;
mod monitor;
mod prove;
mod table;

pub use env::{DesignTraceEnv, FreeTraceEnv, TraceEnv};
pub use equiv::{check_equivalence, EquivConfig, EquivOutcome, Equivalence, TraceCex};
pub use error::EncodeError;
pub use expr::compile_expr;
pub use monitor::{encode_assertion, encode_prop, encode_seq, SeqEnc};
pub use prove::{check_vacuity, prove, DesignCex, ProveConfig, ProveResult};
pub use table::SignalTable;
