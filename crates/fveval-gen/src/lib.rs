//! `fveval-gen` — the scenario generator subsystem.
//!
//! The shipped FVEval corpora cover a handful of hand-curated design
//! families. This crate turns the benchmark into an *open-ended*
//! workload source: a deterministic, seedable generator of synthetic
//! scenario families — parameterized FIFOs, round-robin arbiters,
//! valid/ready handshakes, gray-code counters, shift registers,
//! parity/CRC pipelines, and (opt-in) deep-inductive wrap counters
//! whose headline invariant only the PDR engine closes — each emitting
//!
//! - a SystemVerilog **design** plus a formal **testbench** following
//!   the Design2SVA collateral contract (all design ports re-exposed as
//!   free testbench inputs, `tb_reset` derived from the active-low
//!   `reset_`),
//! - a family of candidate **SVA assertions with golden verdicts**
//!   (provable or falsifiable *by construction*, re-checked against the
//!   repository's own prover — see [`validate_scenario`]), and
//! - **NL descriptions** for every candidate, so one scenario feeds all
//!   three FVEval task types (NL2SVA-Human, NL2SVA-Machine,
//!   Design2SVA).
//!
//! On top of the family-authored candidates, the mutation layer (see
//! [`MutationOp`]) derives *near-miss falsifiable* assertions from the
//! provable ones by perturbing the parsed OP-Tree — operator swap,
//! off-by-one bound, wrong guard polarity, dropped antecedent — giving
//! golden-verdict hard negatives at any volume
//! (`SuiteConfig::mutations`).
//!
//! Everything is byte-identical under a fixed seed: generators never
//! consult ambient randomness, only the [`GenParams`] they are handed.
//!
//! The authoring guide for new families lives in
//! `docs/TASK_AUTHORING.md` at the repository root.
//!
//! # Examples
//!
//! Generate one FIFO scenario and confirm its golden verdicts against
//! the prover:
//!
//! ```
//! use fveval_gen::{generator, validate_scenario, GenParams, ProveConfig};
//!
//! let fifo = generator("fifo").expect("registered family");
//! let scenario = fifo.generate(&GenParams { depth: 4, width: 8, seed: 42 });
//! assert!(scenario.candidates.iter().any(|c| c.verdict.is_provable()));
//! let report = validate_scenario(&scenario, ProveConfig::default()).unwrap();
//! assert_eq!(report.mismatches, 0, "golden verdicts confirmed");
//! ```

#![deny(missing_docs)]

mod families;
mod mutate;
mod suite;
mod validate;

pub use families::{generator, generators};
pub use mutate::{derive_mutants, derive_mutants_with_ops, mutate_scenario, MutationOp};
pub use suite::{generate_suite, write_atomic, write_suite, Suite, SuiteConfig};
pub use validate::{
    bind_scenario, validate_scenario, validate_suite, BoundScenario, ScenarioReport,
};

// Re-exported so downstream callers (CLI, benches) can tune prover
// bounds without depending on `fv-core` directly.
pub use fv_core::{ProveConfig, ProverStats};

/// Size and seed knobs handed to every [`ScenarioGenerator`].
///
/// Each family interprets `depth` as its natural size parameter (FIFO
/// capacity, shift taps, pipeline stages, arbiter requesters, counter
/// bits) and clamps it to the range its golden verdicts are guaranteed
/// in — see each generator's `summary`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Family-interpreted size knob.
    pub depth: u32,
    /// Data width in bits (clamped per family).
    pub width: u32,
    /// Seed for all structural and phrasing randomness.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            depth: 4,
            width: 8,
            seed: 0,
        }
    }
}

/// The golden verdict a candidate assertion carries by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenVerdict {
    /// The assertion holds on the design and the prover must return
    /// `Proven` (BMC base + k-induction).
    Provable,
    /// A reachable violation exists and the prover must return
    /// `Falsified` with a replayable counterexample trace.
    Falsifiable,
}

impl GoldenVerdict {
    /// `true` for [`GoldenVerdict::Provable`].
    pub fn is_provable(self) -> bool {
        matches!(self, GoldenVerdict::Provable)
    }
}

/// One candidate assertion of a scenario: concrete SVA, its NL
/// description, and the verdict the design guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Short stable name, unique within the scenario (e.g.
    /// `no_overflow`); `<scenario id>_<name>` is globally unique.
    pub name: String,
    /// The full labeled assertion text (`asrt: assert property (...)`).
    pub sva: String,
    /// Natural-language description of the property, phrased like the
    /// human set's specifications (without the task-prompt prefix).
    pub nl: String,
    /// The verdict the design guarantees for this assertion.
    pub verdict: GoldenVerdict,
    /// The OP-Tree mutation operator this candidate was derived by,
    /// `None` for family-authored candidates. Mutants always carry
    /// [`GoldenVerdict::Falsifiable`], and [`validate_scenario`] turns
    /// any other prover outcome on them into a *hard error* (naming
    /// the operator and seed) instead of a counted mismatch.
    pub mutation: Option<MutationOp>,
}

/// One generated benchmark scenario: a design, its formal testbench,
/// and the candidate assertions with golden verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Unique id, e.g. `gen_fifo_d4_w8_2a`.
    pub id: String,
    /// Family name (registry key).
    pub family: &'static str,
    /// The parameters the scenario was generated from (post-clamping).
    pub params: GenParams,
    /// The design RTL (all modules).
    pub design_source: String,
    /// The testbench shown to models (design ports as free inputs,
    /// `tb_reset` derived).
    pub tb_source: String,
    /// Design top module name.
    pub top: String,
    /// Testbench module name.
    pub tb_top: String,
    /// A design-internal net name that is *not* visible in the
    /// testbench scope (used by simulated models to reproduce the
    /// paper's internal-signal failure mode).
    pub internal_signal: String,
    /// Candidate assertions with golden verdicts and NL descriptions.
    pub candidates: Vec<Candidate>,
    /// Generated-logic excerpt for token statistics.
    pub logic_excerpt: String,
}

impl Scenario {
    /// The provable candidates (golden references for Design2SVA).
    pub fn provable(&self) -> impl Iterator<Item = &Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.verdict == GoldenVerdict::Provable)
    }

    /// The falsifiable candidates (plausible-but-wrong assertions).
    pub fn falsifiable(&self) -> impl Iterator<Item = &Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.verdict == GoldenVerdict::Falsifiable)
    }
}

/// A scenario family: anything that can turn [`GenParams`] into a
/// self-consistent [`Scenario`].
///
/// The contract every implementation must keep (checked by
/// [`validate_scenario`] and the repository's property tests):
///
/// 1. **Determinism** — equal `GenParams` produce byte-identical
///    scenarios.
/// 2. **Collateral validity** — design and testbench parse and
///    elaborate through `sv-parser` / `sv-synth`.
/// 3. **Golden-verdict soundness** — every candidate's verdict agrees
///    with `fv_core::prove` under default bounds, and every
///    counterexample replays on `sv_synth::Simulator`.
/// 4. **Scope discipline** — candidate assertions reference only
///    testbench-visible names; `internal_signal` names a net that is
///    *not* in scope.
pub trait ScenarioGenerator: Sync + Send {
    /// Registry key (`fifo`, `arbiter`, ...).
    fn family(&self) -> &'static str;

    /// One-line description, including how `depth`/`width` are
    /// interpreted and clamped.
    fn summary(&self) -> &'static str;

    /// Whether the family belongs in suites that did not name their
    /// families explicitly (`true` for all but special-purpose
    /// families). The `deepcnt` family returns `false`: its headline
    /// candidate is only decidable by the PDR engine, so including it
    /// by default would make bounded-engine suite results depend on
    /// the engine selection.
    fn in_default_suite(&self) -> bool {
        true
    }

    /// Generates one scenario. Must be deterministic in `params`.
    fn generate(&self, params: &GenParams) -> Scenario;
}
