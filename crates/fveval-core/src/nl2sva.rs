//! Runner for the NL2SVA-Human and NL2SVA-Machine sub-benchmarks.
//!
//! Like the Design2SVA side, scoring is compile-once / score-many:
//! [`Nl2svaRunner::open_session`] parses and compiles the reference
//! assertion once per case into an [`fv_core::EquivSession`], and every
//! candidate sample (across all models) is checked against it on the
//! shared trace and solver.

use crate::bleu::bleu;
use crate::engine::{human_task_specs, machine_task_specs, EvalEngine};
use crate::metrics::{CaseEvals, SampleEval};
use fv_core::{EquivConfig, EquivSession, ProverStats, SignalTable};
use fveval_data::{HumanCase, MachineCase};
use fveval_llm::{Backend, InferenceConfig};
use sv_parser::parse_assertion_str;

/// Prompt statistics for the length-distribution figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptInfo {
    /// Case id.
    pub id: String,
    /// The NL specification text.
    pub question: String,
    /// The reference solution text.
    pub reference: String,
}

/// Evaluates models on NL-to-assertion tasks with the full pipeline:
/// syntax via the parser, functional/partial via the formal
/// equivalence prover, and BLEU against the reference.
#[derive(Debug, Clone)]
pub struct Nl2svaRunner {
    equiv: EquivConfig,
}

/// A per-case scoring session: the reference assertion compiled once
/// into a shared [`EquivSession`], reused by every candidate sample.
/// Obtain via [`Nl2svaRunner::open_session`], feed it through
/// [`Nl2svaRunner::evaluate_in_session`].
pub struct NlSession<'t> {
    state: NlSessionState<'t>,
}

enum NlSessionState<'t> {
    /// The reference text failed to parse: every sample is a tool
    /// failure (as in the one-shot path).
    BadReference,
    /// Boxed: the session (graph + solver + simulators) dwarfs the
    /// empty variant, and one box per case is noise.
    Open(Box<EquivSession<'t>>),
}

impl NlSession<'_> {
    /// Cumulative prover counters for the shared session.
    pub fn stats(&self) -> ProverStats {
        match &self.state {
            NlSessionState::BadReference => ProverStats::default(),
            NlSessionState::Open(equiv) => equiv.stats(),
        }
    }
}

impl Default for Nl2svaRunner {
    fn default() -> Nl2svaRunner {
        Nl2svaRunner::new()
    }
}

impl Nl2svaRunner {
    /// Runner with default equivalence configuration.
    pub fn new() -> Nl2svaRunner {
        Nl2svaRunner {
            equiv: EquivConfig::default(),
        }
    }

    /// Overrides the equivalence configuration (horizon studies).
    pub fn with_equiv_config(mut self, cfg: EquivConfig) -> Nl2svaRunner {
        self.equiv = cfg;
        self
    }

    /// Opens a scoring session for one case: the reference assertion is
    /// parsed (and later compiled) once, and every candidate checked
    /// through the session shares its trace, strashed graph, and
    /// solver. An unparseable reference yields a session that scores
    /// every sample as a tool failure, matching the one-shot path.
    pub fn open_session<'t>(&self, reference_text: &str, table: &'t SignalTable) -> NlSession<'t> {
        NlSession {
            state: match parse_assertion_str(reference_text) {
                Ok(reference) => {
                    NlSessionState::Open(Box::new(EquivSession::open(reference, table, self.equiv)))
                }
                Err(_) => NlSessionState::BadReference,
            },
        }
    }

    /// Scores one response against a reference in a signal scope.
    ///
    /// A parse failure, an unknown signal, or an engine limit all score
    /// `syntax = false` — the tool-failure verdict in the paper.
    pub fn evaluate_response(
        &self,
        reference_text: &str,
        response: &str,
        table: &SignalTable,
    ) -> SampleEval {
        self.evaluate_response_stats(reference_text, response, table)
            .0
    }

    /// [`Nl2svaRunner::evaluate_response`], additionally reporting how
    /// the equivalence prover discharged its queries (zero counters
    /// when scoring never reached the prover). One-shot: opens a
    /// throwaway session per call; batch scoring should hold a
    /// [`Nl2svaRunner::open_session`] session instead.
    pub fn evaluate_response_stats(
        &self,
        reference_text: &str,
        response: &str,
        table: &SignalTable,
    ) -> (SampleEval, ProverStats) {
        let mut session = self.open_session(reference_text, table);
        self.evaluate_in_session(&mut session, reference_text, response)
    }

    /// Scores one response through a shared per-case session. The
    /// verdict is identical to [`Nl2svaRunner::evaluate_response`] —
    /// sessions only change *how much work* the equivalence check
    /// costs, never its outcome. `reference_text` must be the text the
    /// session was opened with (used for BLEU).
    pub fn evaluate_in_session(
        &self,
        session: &mut NlSession<'_>,
        reference_text: &str,
        response: &str,
    ) -> (SampleEval, ProverStats) {
        let equiv = match &mut session.state {
            NlSessionState::BadReference => return (SampleEval::failed(), ProverStats::default()),
            NlSessionState::Open(equiv) => equiv,
        };
        let candidate = match parse_assertion_str(response) {
            Ok(a) => a,
            Err(_) => {
                return (
                    SampleEval {
                        bleu: bleu(reference_text, response),
                        ..SampleEval::failed()
                    },
                    ProverStats::default(),
                )
            }
        };
        let b = bleu(reference_text, response);
        let before = equiv.stats();
        match equiv.check(&candidate) {
            Err(_) => (
                SampleEval {
                    // Elaboration failure (unknown signal etc.).
                    syntax: false,
                    func: false,
                    partial: false,
                    bleu: b,
                },
                // The session still opened and counted the check before
                // erroring; report that delta so aggregated counters
                // stay exact.
                equiv.stats().delta_since(&before),
            ),
            Ok(out) => (
                SampleEval {
                    syntax: true,
                    func: out.verdict.is_equivalent(),
                    partial: out.verdict.is_partial(),
                    bleu: b,
                },
                out.stats,
            ),
        }
    }

    /// Runs a model over the human dataset (sequential convenience
    /// wrapper over [`EvalEngine`]; build an engine directly for
    /// parallelism and cross-run caching).
    ///
    /// `tables` maps testbench names to their signal scopes.
    pub fn run_human(
        &self,
        model: &dyn Backend,
        cases: &[HumanCase],
        tables: &std::collections::HashMap<&str, SignalTable>,
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<CaseEvals> {
        EvalEngine::with_jobs(1)
            .with_nl2sva_runner(self.clone())
            .run(model, &human_task_specs(cases, tables), cfg, n_samples)
    }

    /// Runs a model over the machine dataset (sequential convenience
    /// wrapper over [`EvalEngine`]).
    pub fn run_machine(
        &self,
        model: &dyn Backend,
        cases: &[MachineCase],
        table: &SignalTable,
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<CaseEvals> {
        EvalEngine::with_jobs(1)
            .with_nl2sva_runner(self.clone())
            .run(model, &machine_task_specs(cases, table), cfg, n_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fveval_data::{generate_machine_cases, machine_signal_table, MachineGenConfig};
    use fveval_llm::profiles;

    fn table() -> SignalTable {
        [("a", 1u32), ("b", 1), ("tb_reset", 1)]
            .into_iter()
            .collect()
    }

    #[test]
    fn exact_response_scores_full() {
        let r = Nl2svaRunner::new();
        let reference = "assert property (@(posedge clk) a |-> ##1 b);";
        let e = r.evaluate_response(reference, reference, &table());
        assert!(e.syntax && e.func && e.partial);
        assert!((e.bleu - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equivalent_rewrite_scores_func_with_lower_bleu() {
        let r = Nl2svaRunner::new();
        let e = r.evaluate_response(
            "assert property (@(posedge clk) a |-> ##1 b);",
            "assert property (@(posedge clk) a |=> b);",
            &table(),
        );
        assert!(e.syntax && e.func && e.partial);
        assert!(e.bleu < 1.0);
    }

    #[test]
    fn weaker_response_scores_partial_only() {
        let r = Nl2svaRunner::new();
        let e = r.evaluate_response(
            "assert property (@(posedge clk) a |-> strong(##[0:$] b));",
            "assert property (@(posedge clk) a |-> ##[1:$] b);",
            &table(),
        );
        assert!(e.syntax && !e.func && e.partial);
    }

    #[test]
    fn hallucination_scores_syntax_fail() {
        let r = Nl2svaRunner::new();
        let e = r.evaluate_response(
            "assert property (@(posedge clk) a |-> s_eventually (b));",
            "assert property (@(posedge clk) a |-> eventually(b));",
            &table(),
        );
        assert!(!e.syntax && !e.func && !e.partial);
    }

    #[test]
    fn unknown_signal_scores_syntax_fail() {
        let r = Nl2svaRunner::new();
        let e = r.evaluate_response(
            "assert property (@(posedge clk) a |-> b);",
            "assert property (@(posedge clk) a |-> ghost);",
            &table(),
        );
        assert!(!e.syntax);
    }

    #[test]
    fn session_scoring_matches_one_shot() {
        let r = Nl2svaRunner::new();
        let t = table();
        let reference = "assert property (@(posedge clk) a |-> ##1 b);";
        let responses = [
            reference,
            "assert property (@(posedge clk) a |=> b);",
            "assert property (@(posedge clk) a |-> ghost);",
            "assert property (@(posedge clk) (a",
            "assert property (@(posedge clk) b);",
            "assert property (@(posedge clk) a |-> (b && tb_reset));",
        ];
        let mut session = r.open_session(reference, &t);
        for resp in responses {
            assert_eq!(
                r.evaluate_in_session(&mut session, reference, resp).0,
                r.evaluate_response(reference, resp, &t),
                "{resp}"
            );
        }
        let stats = session.stats();
        assert_eq!(stats.sessions_opened, 1, "{stats:?}");
        assert!(
            stats.unroll_reuse_hits > 0,
            "reference compiled once, served from cache after: {stats:?}"
        );
    }

    #[test]
    fn bad_reference_session_fails_every_sample() {
        let r = Nl2svaRunner::new();
        let t = table();
        let reference = "assert property (@(posedge clk) (a";
        let mut session = r.open_session(reference, &t);
        let e = r.evaluate_in_session(
            &mut session,
            reference,
            "assert property (@(posedge clk) a);",
        );
        assert_eq!(
            e.0,
            r.evaluate_response(reference, "assert property (@(posedge clk) a);", &t)
        );
        assert!(!e.0.syntax);
    }

    #[test]
    fn run_machine_end_to_end_smoke() {
        let cases = generate_machine_cases(MachineGenConfig {
            count: 12,
            ..Default::default()
        });
        let table = machine_signal_table();
        let models = profiles();
        let model = models.iter().find(|m| m.name() == "gpt-4o").unwrap();
        let runner = Nl2svaRunner::new();
        let evals = runner.run_machine(model, &cases, &table, &InferenceConfig::greedy(), 1);
        assert_eq!(evals.len(), 12);
        // The top model should score reasonably on a small sample.
        let summary = crate::MetricSummary::from_first_samples(&evals);
        assert!(summary.syntax > 0.5, "syntax {summary:?}");
        assert!(summary.partial >= summary.func);
        assert!(summary.syntax >= summary.partial);
    }
}
