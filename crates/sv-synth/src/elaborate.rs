//! Elaboration: AST modules to a flat word-level [`Netlist`].
//!
//! The pipeline is:
//!
//! 1. **Flatten** — resolve parameters and genvars to constants, unroll
//!    generate loops, inline module instances with hierarchical names,
//!    desugar `case` into `if` chains, and resolve every assignment
//!    target to a `(net, bit-range)` pair. Every name the walk touches
//!    is interned into a per-design [`Interner`] arena: scopes, targets,
//!    and flattened expressions ([`Fx`]) carry `Copy` [`Symbol`]s
//!    instead of cloned `String`s, so scope lookups and net-map probes
//!    are integer compares.
//! 2. **Pass A** — discover every driven range of every net and create
//!    one *atom* per driver (input / combinational / register).
//!    Undriven ranges become free inputs (cut points).
//! 3. **Pass B** — elaborate expressions to [`Nx`] and symbolically
//!    execute processes (if/else merging via muxes) to produce each
//!    atom's definition; extract register reset values by partial
//!    evaluation under the asserted reset.
//!
//! Module instantiations can be intercepted by an [`InstanceRouter`]
//! (the frontend-agnostic elaboration driver): a router that claims a
//! module name supplies the child's flattened scope and port directions
//! itself, letting non-SV frontends (or pre-flattened fragments) splice
//! into the same netlist build.

use crate::netexpr::{mask, Nx, NxBin, NxRed};
use crate::netlist::{AtomDef, AtomId, AtomKind, NetBinding, Netlist, Seg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use sv_ast::{
    BinaryOp, EdgeKind, Expr, Interner, LValue, Literal, Module, ModuleItem, PortDir, SourceFile,
    Stmt, Symbol, SymbolMap, SysFunc, UnaryOp,
};

/// Elaboration failure (semantic error after a successful parse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Human-readable description.
    pub message: String,
}

impl ElabError {
    pub(crate) fn new(message: impl Into<String>) -> ElabError {
        ElabError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl Error for ElabError {}

type Result<T> = std::result::Result<T, ElabError>;

const MAX_WIDTH: u32 = 128;
const MAX_GENERATE_ITERS: u32 = 10_000;

// ---------------------------------------------------------------------
// Flattening
// ---------------------------------------------------------------------

/// A name scope: interned source name to its resolved meaning.
pub(crate) type Scope = SymbolMap<Symbol, ScopeEntry>;

/// An unpacked array's shape: element count plus the symbol of element
/// zero. Elements are interned consecutively at declaration, so element
/// `i` is `elem0.offset(i)` — array selects never re-hash a name.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArrayInfo {
    pub(crate) count: u32,
    pub(crate) elem0: Symbol,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct DeclInfo {
    /// Interned flat hierarchical name.
    pub(crate) flat: Symbol,
    pub(crate) width: u32,
    pub(crate) elem_width: u32,
    pub(crate) lsb: u32,
    /// Unpacked array shape, if any.
    pub(crate) elems: Option<ArrayInfo>,
    pub(crate) is_top_input: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ScopeEntry {
    Const(u128),
    Net(DeclInfo),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FlatTarget {
    pub(crate) net: Symbol,
    pub(crate) lo: u32,
    pub(crate) width: u32,
}

/// A flattened expression: the source [`Expr`] with parameters and
/// genvars folded to literals and every identifier resolved to an
/// interned symbol (the flat net name, or the unresolved source name —
/// both are probed against the net map in pass B, so unknown names
/// fail there with the text they were written with).
///
/// Replacing the post-substitution `Expr` tree (which deep-cloned a
/// `String` per identifier) with this `Symbol`-carrying form is the
/// single biggest win of the interned elaboration path.
#[derive(Debug, Clone)]
pub(crate) enum Fx {
    Net(Symbol),
    Lit { width: Option<u32>, value: u128 },
    Fill(bool),
    Unary(UnaryOp, Box<Fx>),
    Binary(BinaryOp, Box<Fx>, Box<Fx>),
    Ternary(Box<Fx>, Box<Fx>, Box<Fx>),
    Concat(Vec<Fx>),
    Replicate(Box<Fx>, Box<Fx>),
    Index(Box<Fx>, Box<Fx>),
    Slice(Box<Fx>, Box<Fx>, Box<Fx>),
    SysCall(SysFunc, Vec<Fx>),
}

#[derive(Debug, Clone)]
pub(crate) enum FlatStmt {
    Block(Vec<FlatStmt>),
    If {
        cond: Fx,
        then: Box<FlatStmt>,
        alt: Option<Box<FlatStmt>>,
    },
    Assign {
        target: FlatTarget,
        rhs: Fx,
    },
    Empty,
}

#[derive(Debug, Clone)]
pub(crate) enum FlatItem {
    Decl(DeclInfo),
    Assign { target: FlatTarget, rhs: Fx },
    Proc { clocked: bool, body: FlatStmt },
}

/// Hook for the frontend-agnostic elaboration driver: intercepts module
/// instantiations during flattening. A router that [`claims`] an
/// instantiation supplies the child's flattened scope and port
/// directions itself (typically by splicing a pre-flattened fragment
/// into the [`Flattener`]); unclaimed instantiations fall back to
/// in-file SV inlining.
///
/// [`claims`]: InstanceRouter::claims
pub(crate) trait InstanceRouter {
    /// Whether this router elaborates `module` (checked before the
    /// in-file module table, so routed fragments win).
    fn claims(&self, module: &str, prefix: &str) -> bool;

    /// Flattens the claimed module under `prefix` into `fl`, returning
    /// the child scope and the `(port name, direction)` list used to
    /// wire the instantiation's connections.
    fn flatten_external(
        &self,
        fl: &mut Flattener<'_>,
        module: &str,
        prefix: &str,
        overrides: &HashMap<String, u128>,
    ) -> Result<(Scope, Vec<(String, PortDir)>)>;
}

/// Port-direction source for an instantiation: the in-file child module,
/// or the list a router handed back for an externally elaborated child.
enum PortDirs<'m> {
    InFile(&'m Module),
    External(Vec<(String, PortDir)>),
}

impl PortDirs<'_> {
    fn dir(&self, pname: &str) -> Option<PortDir> {
        match self {
            PortDirs::InFile(m) => m.port(pname).map(|p| p.dir),
            PortDirs::External(v) => v.iter().find(|(n, _)| n == pname).map(|(_, d)| *d),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Flattener<'r> {
    /// The design's string arena; moved into the built netlist.
    pub(crate) itn: Interner,
    pub(crate) items: Vec<FlatItem>,
    pub(crate) clock_name: Option<String>,
    pub(crate) reset_name: Option<String>,
    pub(crate) warnings: Vec<String>,
    /// Parameter values of the top module (prefix empty), in order.
    pub(crate) top_params: Vec<(String, u128)>,
    pub(crate) router: Option<&'r dyn InstanceRouter>,
}

impl fmt::Debug for dyn InstanceRouter + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("InstanceRouter")
    }
}

impl<'r> Flattener<'r> {
    pub(crate) fn new(router: Option<&'r dyn InstanceRouter>) -> Flattener<'r> {
        Flattener {
            itn: Interner::new(),
            items: Vec::new(),
            clock_name: None,
            reset_name: None,
            warnings: Vec::new(),
            top_params: Vec::new(),
            router,
        }
    }

    fn scope_get<'s>(&self, scope: &'s Scope, name: &str) -> Option<&'s ScopeEntry> {
        scope.get(&self.itn.lookup(name)?)
    }

    pub(crate) fn flatten_module(
        &mut self,
        file: &SourceFile,
        module: &Module,
        prefix: &str,
        param_overrides: &HashMap<String, u128>,
        extra_items: &[ModuleItem],
    ) -> Result<Scope> {
        let mut scope: Scope = Scope::default();
        // Parameters (defaults overridden by instance bindings).
        for p in &module.params {
            let v = match param_overrides.get(&p.name) {
                Some(&v) if !p.local => v,
                _ => const_eval_scoped(&p.value, &scope, &self.itn)?,
            };
            if prefix.is_empty() {
                self.top_params.push((p.name.clone(), v));
            }
            let key = self.itn.intern(&p.name);
            scope.insert(key, ScopeEntry::Const(v));
        }
        // Port declarations.
        for port in &module.ports {
            let (width, lsb) = match &port.range {
                Some(r) => range_width(r, &scope, &self.itn)?,
                None => (1, 0),
            };
            let info = DeclInfo {
                flat: self.itn.intern_parts(&[prefix, &port.name]),
                width,
                elem_width: 1,
                lsb,
                elems: None,
                is_top_input: prefix.is_empty() && port.dir == PortDir::Input,
            };
            let key = self.itn.intern(&port.name);
            scope.insert(key, ScopeEntry::Net(info));
            self.items.push(FlatItem::Decl(info));
        }
        let items: Vec<&ModuleItem> = module.items.iter().chain(extra_items.iter()).collect();
        self.flatten_items(file, &items, prefix, &mut scope)?;
        Ok(scope)
    }

    pub(crate) fn flatten_items(
        &mut self,
        file: &SourceFile,
        items: &[&ModuleItem],
        prefix: &str,
        scope: &mut Scope,
    ) -> Result<()> {
        for item in items {
            self.flatten_item(file, item, prefix, scope)?;
        }
        Ok(())
    }

    fn flatten_item(
        &mut self,
        file: &SourceFile,
        item: &ModuleItem,
        prefix: &str,
        scope: &mut Scope,
    ) -> Result<()> {
        match item {
            ModuleItem::Param(p) => {
                let v = const_eval_scoped(&p.value, scope, &self.itn)?;
                if prefix.is_empty() {
                    self.top_params.push((p.name.clone(), v));
                }
                let key = self.itn.intern(&p.name);
                scope.insert(key, ScopeEntry::Const(v));
            }
            ModuleItem::Port(p) => {
                // In-body port decl inside an instantiated module.
                let (width, lsb) = match &p.range {
                    Some(r) => range_width(r, scope, &self.itn)?,
                    None => (1, 0),
                };
                let info = DeclInfo {
                    flat: self.itn.intern_parts(&[prefix, &p.name]),
                    width,
                    elem_width: 1,
                    lsb,
                    elems: None,
                    is_top_input: prefix.is_empty() && p.dir == PortDir::Input,
                };
                let key = self.itn.intern(&p.name);
                scope.insert(key, ScopeEntry::Net(info));
                self.items.push(FlatItem::Decl(info));
            }
            ModuleItem::Net(n) => {
                if n.kind == sv_ast::NetKind::Genvar {
                    // Bare genvar declaration; value assigned by loops.
                    return Ok(());
                }
                let mut width = 1u32;
                let mut elem_width = 1u32;
                let mut lsb = 0u32;
                if !n.packed.is_empty() {
                    let (w0, l0) = range_width(&n.packed[0], scope, &self.itn)?;
                    lsb = l0;
                    let mut inner = 1u32;
                    for r in &n.packed[1..] {
                        let (w, _) = range_width(r, scope, &self.itn)?;
                        inner = inner
                            .checked_mul(w)
                            .ok_or_else(|| ElabError::new("packed dimensions overflow"))?;
                    }
                    elem_width = inner;
                    width = w0
                        .checked_mul(inner)
                        .ok_or_else(|| ElabError::new("packed dimensions overflow"))?;
                }
                if width > MAX_WIDTH && n.packed.len() == 1 {
                    return Err(ElabError::new(format!(
                        "net '{}' wider than {MAX_WIDTH} bits",
                        n.name
                    )));
                }
                let flat = self.itn.intern_parts(&[prefix, &n.name]);
                let elems = if n.unpacked.is_empty() {
                    None
                } else {
                    let mut count = 1u32;
                    for r in &n.unpacked {
                        let (w, _) = range_width(r, scope, &self.itn)?;
                        count = count
                            .checked_mul(w)
                            .ok_or_else(|| ElabError::new("unpacked dimensions overflow"))?;
                    }
                    // Intern every element name back-to-back so selects
                    // can address element `i` as `elem0.offset(i)`
                    // without re-hashing. Element names are produced
                    // only here, so the run is truly consecutive.
                    let base = self.itn.resolve(flat).to_string();
                    let mut name = String::with_capacity(base.len() + 8);
                    let mut elem0 = None;
                    for i in 0..count {
                        name.clear();
                        use std::fmt::Write as _;
                        let _ = write!(name, "{base}[{i}]");
                        let s = self.itn.intern(&name);
                        let e0 = *elem0.get_or_insert(s);
                        debug_assert_eq!(s, e0.offset(i), "array elements interned consecutively");
                    }
                    Some(ArrayInfo {
                        count,
                        // A zero-element array has no element symbols;
                        // bounds checks keep `elem0` unused then.
                        elem0: elem0.unwrap_or(flat),
                    })
                };
                let info = DeclInfo {
                    flat,
                    width,
                    elem_width,
                    lsb,
                    elems,
                    is_top_input: false,
                };
                let key = self.itn.intern(&n.name);
                scope.insert(key, ScopeEntry::Net(info));
                self.items.push(FlatItem::Decl(info));
                if let Some(init) = &n.init {
                    let rhs = self.flatten_expr(init, scope);
                    self.items.push(FlatItem::Assign {
                        target: FlatTarget {
                            net: info.flat,
                            lo: 0,
                            width: info.width,
                        },
                        rhs,
                    });
                }
            }
            ModuleItem::ContAssign(a) => {
                let target = self.resolve_lvalue(&a.lhs, scope)?;
                let rhs = self.flatten_expr(&a.rhs, scope);
                self.items.push(FlatItem::Assign { target, rhs });
            }
            ModuleItem::AlwaysComb(body) => {
                let fb = self.flatten_stmt(body, scope)?;
                self.items.push(FlatItem::Proc {
                    clocked: false,
                    body: fb,
                });
            }
            ModuleItem::AlwaysFf { events, body } | ModuleItem::AlwaysAt { events, body } => {
                let mut clocked = false;
                for ev in events {
                    match ev.edge {
                        EdgeKind::Pos => {
                            clocked = true;
                            if self.clock_name.is_none() {
                                self.clock_name = Some(ev.signal.clone());
                            }
                        }
                        EdgeKind::Neg => {
                            // Async active-low reset by convention.
                            if self.reset_name.is_none() {
                                self.reset_name = Some(ev.signal.clone());
                            }
                        }
                    }
                }
                if !clocked {
                    return Err(ElabError::new(
                        "always block without a posedge clock is not supported",
                    ));
                }
                let fb = self.flatten_stmt(body, scope)?;
                self.items.push(FlatItem::Proc {
                    clocked: true,
                    body: fb,
                });
            }
            ModuleItem::GenerateFor {
                var,
                init,
                cond,
                step,
                body,
                ..
            } => {
                let mut value = const_eval_scoped(init, scope, &self.itn)?;
                let var_key = self.itn.intern(var);
                let body_refs: Vec<&ModuleItem> = body.iter().collect();
                // Only top-level declarations in the body can touch the
                // iteration scope (instances and nested generates work
                // on their own clones), so a declaration-free body —
                // the common shape — reuses one scope across
                // iterations instead of cloning per iteration.
                let body_declares = body.iter().any(|it| {
                    matches!(
                        it,
                        ModuleItem::Param(_) | ModuleItem::Port(_) | ModuleItem::Net(_)
                    )
                });
                let mut shared = (!body_declares).then(|| scope.clone());
                let mut iters = 0u32;
                loop {
                    let mut per_iter;
                    let inner = match &mut shared {
                        Some(s) => s,
                        None => {
                            per_iter = scope.clone();
                            &mut per_iter
                        }
                    };
                    inner.insert(var_key, ScopeEntry::Const(value));
                    if const_eval_scoped(cond, inner, &self.itn)? == 0 {
                        break;
                    }
                    self.flatten_items(file, &body_refs, prefix, inner)?;
                    // Per-iteration declarations stay local to their
                    // clone; drivers of outer nets were already
                    // recorded.
                    value = const_eval_scoped(step, inner, &self.itn)?;
                    iters += 1;
                    if iters > MAX_GENERATE_ITERS {
                        return Err(ElabError::new("generate loop exceeds iteration limit"));
                    }
                }
            }
            ModuleItem::Instance(inst) => {
                let mut overrides = HashMap::new();
                for (name, e) in &inst.params {
                    let fx = self.flatten_expr(e, scope);
                    overrides.insert(name.clone(), fx_const_eval(&fx, &self.itn)?);
                }
                let child_prefix = format!("{prefix}{}.", inst.name);
                // The router (elaboration driver) gets first claim on the
                // module name; unclaimed instances inline from the file.
                let router = self.router;
                let routed = router.is_some_and(|r| r.claims(&inst.module, &child_prefix));
                let (child_scope, ports) = if routed {
                    let (s, p) = router.expect("claimed").flatten_external(
                        self,
                        &inst.module,
                        &child_prefix,
                        &overrides,
                    )?;
                    (s, PortDirs::External(p))
                } else {
                    let child = file.module(&inst.module).ok_or_else(|| {
                        ElabError::new(format!("unknown module '{}'", inst.module))
                    })?;
                    let s = self.flatten_module(file, child, &child_prefix, &overrides, &[])?;
                    (s, PortDirs::InFile(child))
                };
                // Port connections become assigns in the right direction.
                for (pname, conn) in &inst.conns {
                    let dir = ports.dir(pname).ok_or_else(|| {
                        ElabError::new(format!("module '{}' has no port '{pname}'", inst.module))
                    })?;
                    let child_info = match self.scope_get(&child_scope, pname) {
                        Some(ScopeEntry::Net(i)) => *i,
                        _ => {
                            return Err(ElabError::new(format!(
                                "port '{pname}' did not elaborate to a net"
                            )))
                        }
                    };
                    match dir {
                        PortDir::Input => {
                            let rhs = self.flatten_expr(conn, scope);
                            self.items.push(FlatItem::Assign {
                                target: FlatTarget {
                                    net: child_info.flat,
                                    lo: 0,
                                    width: child_info.width,
                                },
                                rhs,
                            });
                        }
                        PortDir::Output => {
                            let lv = expr_as_lvalue(conn).ok_or_else(|| {
                                ElabError::new(format!(
                                    "output port '{pname}' must connect to an assignable \
                                     expression"
                                ))
                            })?;
                            let target = self.resolve_lvalue(&lv, scope)?;
                            self.items.push(FlatItem::Assign {
                                target,
                                rhs: Fx::Net(child_info.flat),
                            });
                        }
                        PortDir::Inout => {
                            return Err(ElabError::new("inout ports are not supported"))
                        }
                    }
                }
            }
            ModuleItem::Assertion(_) => {
                // Assertions are collected by the caller (fv-core); they do
                // not contribute netlist logic.
            }
        }
        Ok(())
    }

    fn flatten_stmt(&mut self, stmt: &Stmt, scope: &Scope) -> Result<FlatStmt> {
        Ok(match stmt {
            Stmt::Block(stmts) => FlatStmt::Block(
                stmts
                    .iter()
                    .map(|s| self.flatten_stmt(s, scope))
                    .collect::<Result<_>>()?,
            ),
            Stmt::If { cond, then, alt } => FlatStmt::If {
                cond: self.flatten_expr(cond, scope),
                then: Box::new(self.flatten_stmt(then, scope)?),
                alt: match alt {
                    Some(a) => Some(Box::new(self.flatten_stmt(a, scope)?)),
                    None => None,
                },
            },
            Stmt::Case {
                subject,
                arms,
                default,
            } => {
                // Desugar to an if/else chain. The subject flattens once
                // and is shared (cloned) per label — substitution
                // distributes over the comparison, so this matches
                // flattening each `subject == label` separately.
                let subj = self.flatten_expr(subject, scope);
                let mut acc = match default {
                    Some(d) => self.flatten_stmt(d, scope)?,
                    None => FlatStmt::Empty,
                };
                for (labels, body) in arms.iter().rev() {
                    let mut cond: Option<Fx> = None;
                    for l in labels {
                        let lf = self.flatten_expr(l, scope);
                        let eq = Fx::Binary(BinaryOp::Eq, Box::new(subj.clone()), Box::new(lf));
                        cond = Some(match cond {
                            None => eq,
                            Some(c) => Fx::Binary(BinaryOp::LogOr, Box::new(c), Box::new(eq)),
                        });
                    }
                    let cond = cond.ok_or_else(|| ElabError::new("case arm without labels"))?;
                    acc = FlatStmt::If {
                        cond,
                        then: Box::new(self.flatten_stmt(body, scope)?),
                        alt: Some(Box::new(acc)),
                    };
                }
                acc
            }
            Stmt::NonBlocking(lv, rhs) | Stmt::Blocking(lv, rhs) => FlatStmt::Assign {
                target: self.resolve_lvalue(lv, scope)?,
                rhs: self.flatten_expr(rhs, scope),
            },
            Stmt::Empty => FlatStmt::Empty,
        })
    }

    fn resolve_lvalue(&mut self, lv: &LValue, scope: &Scope) -> Result<FlatTarget> {
        match lv {
            LValue::Ident(name) => {
                let info = self.lookup_net(scope, name)?;
                Ok(FlatTarget {
                    net: info.flat,
                    lo: 0,
                    width: info.width,
                })
            }
            LValue::Index(name, idx) => {
                let info = self.lookup_net(scope, name)?;
                let i = const_eval_scoped(idx, scope, &self.itn).map_err(|_| {
                    ElabError::new(format!(
                        "assignment index into '{name}' must be an elaboration-time constant"
                    ))
                })?;
                if let Some(arr) = info.elems {
                    // Array element: its own net. In-range indices hit
                    // the consecutive element symbols; out-of-range
                    // ones intern the written name so the later
                    // "undeclared driver" diagnostics keep their text.
                    let net = if i < u128::from(arr.count) {
                        arr.elem0.offset(i as u32)
                    } else {
                        let elem = format!("{}[{i}]", self.itn.resolve(info.flat));
                        self.itn.intern(&elem)
                    };
                    Ok(FlatTarget {
                        net,
                        lo: 0,
                        width: info.width,
                    })
                } else {
                    let i = u32::try_from(i)
                        .map_err(|_| ElabError::new("index too large"))?
                        .checked_sub(info.lsb)
                        .ok_or_else(|| ElabError::new(format!("index below lsb of '{name}'")))?;
                    let lo = i * info.elem_width;
                    if lo + info.elem_width > info.width {
                        return Err(ElabError::new(format!("index out of range for '{name}'")));
                    }
                    Ok(FlatTarget {
                        net: info.flat,
                        lo,
                        width: info.elem_width,
                    })
                }
            }
            LValue::Slice(name, hi, lo) => {
                let info = self.lookup_net(scope, name)?;
                let hi_fx = self.flatten_expr(hi, scope);
                let lo_fx = self.flatten_expr(lo, scope);
                let hi = fx_const_eval(&hi_fx, &self.itn)?;
                let lo = fx_const_eval(&lo_fx, &self.itn)?;
                let (hi, lo) = (
                    u32::try_from(hi).map_err(|_| ElabError::new("slice bound too large"))?,
                    u32::try_from(lo).map_err(|_| ElabError::new("slice bound too large"))?,
                );
                if lo > hi || hi - info.lsb >= info.width {
                    return Err(ElabError::new(format!("slice out of range for '{name}'")));
                }
                Ok(FlatTarget {
                    net: info.flat,
                    lo: lo - info.lsb,
                    width: hi - lo + 1,
                })
            }
            LValue::Concat(_) => Err(ElabError::new(
                "concatenation assignment targets are not supported",
            )),
        }
    }

    fn lookup_net(&self, scope: &Scope, name: &str) -> Result<DeclInfo> {
        match self.scope_get(scope, name) {
            Some(ScopeEntry::Net(info)) => Ok(*info),
            Some(ScopeEntry::Const(_)) => Err(ElabError::new(format!(
                "'{name}' is a parameter, not an assignable net"
            ))),
            None => Err(ElabError::new(format!(
                "assignment to undeclared net '{name}'"
            ))),
        }
    }

    /// Flattens an expression: parameters/genvars fold to literals, nets
    /// resolve to their interned flat names. Unknown identifiers are
    /// interned as written (reported later).
    fn flatten_expr(&mut self, e: &Expr, scope: &Scope) -> Fx {
        match e {
            Expr::Ident(name) => match self.scope_get(scope, name) {
                Some(ScopeEntry::Const(v)) => Fx::Lit {
                    width: None,
                    value: *v,
                },
                Some(ScopeEntry::Net(info)) => Fx::Net(info.flat),
                None => Fx::Net(self.itn.intern(name)),
            },
            Expr::Literal(Literal::Int { width, value, .. }) => Fx::Lit {
                width: *width,
                value: *value,
            },
            Expr::Literal(Literal::Fill(b)) => Fx::Fill(*b),
            Expr::Unary(op, i) => Fx::Unary(*op, Box::new(self.flatten_expr(i, scope))),
            Expr::Binary(op, a, b) => Fx::Binary(
                *op,
                Box::new(self.flatten_expr(a, scope)),
                Box::new(self.flatten_expr(b, scope)),
            ),
            Expr::Ternary(c, t, f) => Fx::Ternary(
                Box::new(self.flatten_expr(c, scope)),
                Box::new(self.flatten_expr(t, scope)),
                Box::new(self.flatten_expr(f, scope)),
            ),
            Expr::Concat(es) => {
                Fx::Concat(es.iter().map(|x| self.flatten_expr(x, scope)).collect())
            }
            Expr::Replicate(n, x) => Fx::Replicate(
                Box::new(self.flatten_expr(n, scope)),
                Box::new(self.flatten_expr(x, scope)),
            ),
            Expr::Index(b, i) => Fx::Index(
                Box::new(self.flatten_expr(b, scope)),
                Box::new(self.flatten_expr(i, scope)),
            ),
            Expr::Slice(b, h, l) => Fx::Slice(
                Box::new(self.flatten_expr(b, scope)),
                Box::new(self.flatten_expr(h, scope)),
                Box::new(self.flatten_expr(l, scope)),
            ),
            Expr::SysCall(f, args) => Fx::SysCall(
                *f,
                args.iter().map(|x| self.flatten_expr(x, scope)).collect(),
            ),
        }
    }
}

fn expr_as_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Index(b, i) => match b.as_ref() {
            Expr::Ident(n) => Some(LValue::Index(n.clone(), (**i).clone())),
            _ => None,
        },
        Expr::Slice(b, h, l) => match b.as_ref() {
            Expr::Ident(n) => Some(LValue::Slice(n.clone(), (**h).clone(), (**l).clone())),
            _ => None,
        },
        _ => None,
    }
}

fn range_width(r: &sv_ast::Range, scope: &Scope, itn: &Interner) -> Result<(u32, u32)> {
    let msb = const_eval_scoped(&r.msb, scope, itn)?;
    let lsb = const_eval_scoped(&r.lsb, scope, itn)?;
    if lsb > msb {
        return Err(ElabError::new("descending ranges must have msb >= lsb"));
    }
    let w = u32::try_from(msb - lsb + 1).map_err(|_| ElabError::new("range too wide"))?;
    if w > MAX_WIDTH {
        return Err(ElabError::new(format!("range wider than {MAX_WIDTH} bits")));
    }
    Ok((
        w,
        u32::try_from(lsb).map_err(|_| ElabError::new("lsb too large"))?,
    ))
}

fn const_unary(op: UnaryOp, v: u128) -> Result<u128> {
    Ok(match op {
        UnaryOp::LogNot => u128::from(v == 0),
        UnaryOp::BitNot => !v,
        UnaryOp::Neg => v.wrapping_neg(),
        UnaryOp::Pos => v,
        UnaryOp::RedOr => u128::from(v != 0),
        UnaryOp::RedAnd => {
            return Err(ElabError::new(
                "reduction-and needs a width; not allowed in constants",
            ))
        }
        UnaryOp::RedXor => u128::from(v.count_ones() % 2 == 1),
        _ => return Err(ElabError::new("unsupported unary op in constant")),
    })
}

fn const_binary(op: BinaryOp, x: u128, y: u128) -> Result<u128> {
    Ok(match op {
        BinaryOp::Add => x.wrapping_add(y),
        BinaryOp::Sub => x.wrapping_sub(y),
        BinaryOp::Mul => x.wrapping_mul(y),
        BinaryOp::Div => {
            if y == 0 {
                return Err(ElabError::new("division by zero in constant"));
            }
            x / y
        }
        BinaryOp::Mod => {
            if y == 0 {
                return Err(ElabError::new("modulo by zero in constant"));
            }
            x % y
        }
        BinaryOp::Shl | BinaryOp::AShl => x.checked_shl(y as u32).unwrap_or(0),
        BinaryOp::Shr | BinaryOp::AShr => x.checked_shr(y as u32).unwrap_or(0),
        BinaryOp::BitAnd => x & y,
        BinaryOp::BitOr => x | y,
        BinaryOp::BitXor => x ^ y,
        BinaryOp::BitXnor => !(x ^ y),
        BinaryOp::Eq | BinaryOp::CaseEq => u128::from(x == y),
        BinaryOp::Neq | BinaryOp::CaseNeq => u128::from(x != y),
        BinaryOp::Lt => u128::from(x < y),
        BinaryOp::Le => u128::from(x <= y),
        BinaryOp::Gt => u128::from(x > y),
        BinaryOp::Ge => u128::from(x >= y),
        BinaryOp::LogAnd => u128::from(x != 0 && y != 0),
        BinaryOp::LogOr => u128::from(x != 0 || y != 0),
    })
}

/// Elaboration-time constant evaluation over source expressions
/// (parameters, genvar bounds, range bounds). Identifiers must resolve
/// to constants in `scope`.
fn const_eval_scoped(e: &Expr, scope: &Scope, itn: &Interner) -> Result<u128> {
    Ok(match e {
        Expr::Ident(name) => match itn.lookup(name).and_then(|s| scope.get(&s)) {
            Some(ScopeEntry::Const(v)) => *v,
            _ => {
                return Err(ElabError::new(format!(
                    "'{name}' is not an elaboration-time constant"
                )))
            }
        },
        Expr::Literal(Literal::Int { value, .. }) => *value,
        Expr::Literal(Literal::Fill(_)) => {
            return Err(ElabError::new("fill literal in constant context"))
        }
        Expr::Unary(op, i) => const_unary(*op, const_eval_scoped(i, scope, itn)?)?,
        Expr::Binary(op, a, b) => const_binary(
            *op,
            const_eval_scoped(a, scope, itn)?,
            const_eval_scoped(b, scope, itn)?,
        )?,
        Expr::Ternary(c, t, f) => {
            if const_eval_scoped(c, scope, itn)? != 0 {
                const_eval_scoped(t, scope, itn)?
            } else {
                const_eval_scoped(f, scope, itn)?
            }
        }
        Expr::SysCall(SysFunc::Clog2, args) if args.len() == 1 => {
            let v = const_eval_scoped(&args[0], scope, itn)?;
            u128::from(clog2(v))
        }
        _ => {
            return Err(ElabError::new(
                "expression is not an elaboration-time constant",
            ))
        }
    })
}

/// Constant evaluation over flattened expressions (indices, slice and
/// replication bounds — everything that was scope-resolved already).
/// Net references are non-constant; the error carries the name they
/// resolved to, matching what substitution used to report.
fn fx_const_eval(e: &Fx, itn: &Interner) -> Result<u128> {
    Ok(match e {
        Fx::Net(sym) => {
            return Err(ElabError::new(format!(
                "'{}' is not an elaboration-time constant",
                itn.resolve(*sym)
            )))
        }
        Fx::Lit { value, .. } => *value,
        Fx::Fill(_) => return Err(ElabError::new("fill literal in constant context")),
        Fx::Unary(op, i) => const_unary(*op, fx_const_eval(i, itn)?)?,
        Fx::Binary(op, a, b) => const_binary(*op, fx_const_eval(a, itn)?, fx_const_eval(b, itn)?)?,
        Fx::Ternary(c, t, f) => {
            if fx_const_eval(c, itn)? != 0 {
                fx_const_eval(t, itn)?
            } else {
                fx_const_eval(f, itn)?
            }
        }
        Fx::SysCall(SysFunc::Clog2, args) if args.len() == 1 => {
            u128::from(clog2(fx_const_eval(&args[0], itn)?))
        }
        _ => {
            return Err(ElabError::new(
                "expression is not an elaboration-time constant",
            ))
        }
    })
}

fn clog2(v: u128) -> u32 {
    if v <= 1 {
        0
    } else {
        128 - (v - 1).leading_zeros()
    }
}

// ---------------------------------------------------------------------
// Netlist construction (passes A and B)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriverKind {
    Comb,
    Reg,
}

#[derive(Debug)]
struct Builder {
    /// Arena continued from the flattener; frozen into the netlist.
    itn: Interner,
    netlist: Netlist,
    /// (net, lo, width) -> atom
    atom_of_range: SymbolMap<(Symbol, u32, u32), AtomId>,
    /// Declared nets pending binding construction.
    decls: SymbolMap<Symbol, DeclInfo>,
    decl_order: Vec<Symbol>,
    drivers: SymbolMap<Symbol, Vec<(u32, u32, DriverKind, usize)>>,
    /// Per array, the symbol of element 0 (elements are interned
    /// consecutively, so element `i` is `elem0.offset(i)`).
    array_elem0: SymbolMap<Symbol, Symbol>,
}

/// Elaborates `top` from `file` into a flat netlist.
///
/// # Errors
///
/// Returns [`ElabError`] on semantic violations: unknown modules or
/// signals, non-constant indices, multiple drivers, width overflows,
/// combinational cycles, and unsupported constructs.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Netlist> {
    elaborate_with_extras(file, top, &[])
}

/// Elaborates `top` with extra module items appended to its body —
/// the Design2SVA evaluation flow, where the model's response snippet
/// (wires, assigns, processes) is grafted onto the testbench module.
///
/// When the same design is bound against *many* extra-item sets (one
/// per model response), prefer [`elaborate_design`] +
/// [`ElaboratedDesign::bind_extras`]: the whole-file walk (instance
/// inlining, generate unrolling, parameter resolution) runs once and
/// each binding only flattens its own few items.
///
/// # Errors
///
/// See [`elaborate`]; additionally errors if the extra items reference
/// signals that are neither testbench ports nor their own declarations
/// (the benchmark's "do not use design-internal signals" rule).
pub fn elaborate_with_extras(
    file: &SourceFile,
    top: &str,
    extras: &[ModuleItem],
) -> Result<Netlist> {
    let module = file
        .module(top)
        .ok_or_else(|| ElabError::new(format!("unknown top module '{top}'")))?;
    let mut fl = Flattener::new(None);
    fl.flatten_module(file, module, "", &HashMap::new(), extras)?;
    let Flattener {
        itn,
        items,
        clock_name,
        reset_name,
        warnings,
        top_params,
        ..
    } = fl;
    build_netlist(
        &items,
        &[],
        itn,
        &clock_name,
        &reset_name,
        &warnings,
        &top_params,
    )
}

/// A design elaborated once into reusable flattened form: the result of
/// the expensive whole-file walk (module inlining, generate unrolling,
/// parameter and genvar resolution) plus the top module's name scope,
/// ready to have per-response extra items spliced in cheaply.
///
/// This is the compile-once half of the compile-once / score-many
/// Design2SVA flow: [`elaborate_design`] pays the full elaboration once
/// per design, and every candidate response only pays
/// [`ElaboratedDesign::bind_extras`] for its own handful of helper
/// items.
///
/// # Examples
///
/// ```
/// use sv_parser::parse_source;
/// use sv_synth::elaborate_design;
///
/// let f = parse_source(
///     "module tb (clk, a, q);\ninput clk; input a; output q;\n\
///      assign q = a;\nendmodule\n",
/// )
/// .unwrap();
/// let design = elaborate_design(&f, "tb", &[]).unwrap();
/// // The helper-free binding is the cached base netlist.
/// assert!(design.netlist().net("q").is_some());
/// // A response's helper items splice in without re-walking the file.
/// let extras = sv_parser::parse_snippet("logic mirror;\nassign mirror = a;").unwrap();
/// let bound = design.bind_extras(&extras).unwrap();
/// assert!(bound.net("mirror").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ElaboratedDesign {
    file: SourceFile,
    items: Vec<FlatItem>,
    scope: Scope,
    clock_name: Option<String>,
    reset_name: Option<String>,
    warnings: Vec<String>,
    top_params: Vec<(String, u128)>,
    base: Netlist,
    /// Lazily computed content digest of the base netlist (see
    /// [`ElaboratedDesign::content_digest`]).
    digest: std::sync::OnceLock<u64>,
}

/// Elaborates `top` (with `extras` already part of the design, e.g. the
/// DUT instantiation of a Design2SVA testbench) into a reusable
/// [`ElaboratedDesign`]. The base netlist is built and validated
/// eagerly, so a successful return means the helper-free binding is
/// known-good.
///
/// # Errors
///
/// See [`elaborate_with_extras`].
pub fn elaborate_design(
    file: &SourceFile,
    top: &str,
    extras: &[ModuleItem],
) -> Result<ElaboratedDesign> {
    elaborate_design_routed(file, top, extras, None)
}

/// [`elaborate_design`] with an optional [`InstanceRouter`] — the entry
/// point the elaboration driver uses to splice externally elaborated
/// module fragments into the flattening walk.
pub(crate) fn elaborate_design_routed(
    file: &SourceFile,
    top: &str,
    extras: &[ModuleItem],
    router: Option<&dyn InstanceRouter>,
) -> Result<ElaboratedDesign> {
    let _span = fv_trace::span!("elaborate", top = top, extras = extras.len());
    let module = file
        .module(top)
        .ok_or_else(|| ElabError::new(format!("unknown top module '{top}'")))?;
    let mut fl = Flattener::new(router);
    let scope = fl.flatten_module(file, module, "", &HashMap::new(), extras)?;
    let Flattener {
        itn,
        items,
        clock_name,
        reset_name,
        warnings,
        top_params,
        ..
    } = fl;
    let base = build_netlist(
        &items,
        &[],
        itn,
        &clock_name,
        &reset_name,
        &warnings,
        &top_params,
    )?;
    Ok(ElaboratedDesign {
        file: file.clone(),
        items,
        scope,
        clock_name,
        reset_name,
        warnings,
        top_params,
        base,
        digest: std::sync::OnceLock::new(),
    })
}

impl ElaboratedDesign {
    /// The cached base netlist (no extra items beyond those the design
    /// was elaborated with). Identical to what
    /// [`ElaboratedDesign::bind_extras`] returns for an empty slice,
    /// without the clone.
    pub fn netlist(&self) -> &Netlist {
        &self.base
    }

    /// Top-module parameter values, in declaration order (the
    /// testbench constants visible to assertions).
    pub fn params(&self) -> &[(String, u128)] {
        &self.top_params
    }

    /// Content digest of the base netlist, computed on first use and
    /// cached (see [`Netlist::content_digest`]). Cache keys built
    /// from this digest dedupe recompilation of identical designs
    /// without rehashing the netlist per probe.
    pub fn content_digest(&self) -> u64 {
        *self.digest.get_or_init(|| self.base.content_digest())
    }

    /// Splices `extras` into the already-flattened design and builds
    /// the bound netlist. Only the extra items are flattened — they are
    /// resolved in the saved top-module scope exactly as if they had
    /// been appended to the module body, so the result is identical to
    /// [`elaborate_with_extras`] with the concatenated extras, at a
    /// fraction of the cost.
    ///
    /// # Errors
    ///
    /// See [`elaborate_with_extras`].
    pub fn bind_extras(&self, extras: &[ModuleItem]) -> Result<Netlist> {
        if extras.is_empty() {
            return Ok(self.base.clone());
        }
        let _span = fv_trace::span!("bind_extras", extras = extras.len());
        // Resume flattening where the base elaboration stopped: same
        // scope, same clock/reset detection state, fresh item list. The
        // arena resumes from the frozen base interner (append-only, so
        // every saved symbol stays valid).
        let mut fl = Flattener {
            itn: (*self.base.syms).clone(),
            items: Vec::new(),
            clock_name: self.clock_name.clone(),
            reset_name: self.reset_name.clone(),
            warnings: Vec::new(),
            top_params: Vec::new(),
            router: None,
        };
        let mut scope = self.scope.clone();
        let refs: Vec<&ModuleItem> = extras.iter().collect();
        fl.flatten_items(&self.file, &refs, "", &mut scope)?;
        let mut warnings = self.warnings.clone();
        warnings.extend(fl.warnings);
        let mut top_params = self.top_params.clone();
        top_params.extend(fl.top_params);
        build_netlist(
            &self.items,
            &fl.items,
            fl.itn,
            &fl.clock_name,
            &fl.reset_name,
            &warnings,
            &top_params,
        )
    }
}

// ---------------------------------------------------------------------
// Module fragments (elaboration driver)
// ---------------------------------------------------------------------

/// A module flattened in isolation (prefix-free), ready to be spliced
/// into a design under an instance prefix (`Flattener::splice_fragment`).
/// Fragments are what the elaboration driver's frontends produce: each
/// carries its own private interner, so independent modules can flatten
/// on separate threads and merge into the design's arena
/// deterministically at splice time.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The fragment's private arena; symbols below index into this.
    pub(crate) itn: Interner,
    pub(crate) items: Vec<FlatItem>,
    /// The module's own name scope (keys are unprefixed source names).
    pub(crate) scope: Scope,
    /// Port names and directions, in declaration order.
    pub(crate) ports: Vec<(String, PortDir)>,
    /// First posedge signal seen, by source name (unprefixed, matching
    /// what in-file inlining records).
    pub(crate) clock_name: Option<String>,
    /// First negedge signal seen, by source name.
    pub(crate) reset_name: Option<String>,
}

impl Fragment {
    /// Flattens `module` from `file` with the given parameter overrides
    /// into a standalone fragment. Nested in-file instances are inlined
    /// into the fragment.
    ///
    /// # Errors
    ///
    /// Fails when the module is unknown or any contained item fails to
    /// elaborate (see [`elaborate_with_extras`]).
    pub fn from_sv(
        file: &SourceFile,
        module: &str,
        overrides: &HashMap<String, u128>,
    ) -> Result<Fragment> {
        let m = file
            .module(module)
            .ok_or_else(|| ElabError::new(format!("unknown module '{module}'")))?;
        let mut fl = Flattener::new(None);
        let scope = fl.flatten_module(file, m, "", overrides, &[])?;
        // Flattening emits no warnings today; if that changes, splice
        // must learn to re-prefix their text.
        debug_assert!(
            fl.warnings.is_empty(),
            "flatten-time warnings: {:?}",
            fl.warnings
        );
        Ok(Fragment {
            itn: fl.itn,
            items: fl.items,
            scope,
            ports: m.ports.iter().map(|p| (p.name.clone(), p.dir)).collect(),
            clock_name: fl.clock_name,
            reset_name: fl.reset_name,
        })
    }
}

/// Splice state: rewrites fragment-arena symbols into the design arena,
/// prefixing flat names with the instance path.
struct Splicer<'a> {
    itn: &'a mut Interner,
    frag: &'a Fragment,
    prefix: &'a str,
    /// Fragment symbol index → design-arena symbol, filled lazily.
    map: Vec<Option<Symbol>>,
}

impl Splicer<'_> {
    fn map_sym(&mut self, s: Symbol) -> Symbol {
        if let Some(m) = self.map[s.index()] {
            return m;
        }
        let m = self
            .itn
            .intern_parts(&[self.prefix, self.frag.itn.resolve(s)]);
        self.map[s.index()] = Some(m);
        m
    }

    /// Remaps a declaration. Array element symbols are re-interned
    /// eagerly and in order here so the consecutive-run invariant
    /// (`elem0.offset(i)` addresses element `i`) holds in the design
    /// arena; a lazy per-use remap would scatter them.
    fn map_decl(&mut self, info: DeclInfo) -> DeclInfo {
        let flat = self.map_sym(info.flat);
        let elems = info.elems.map(|arr| {
            let mut elem0 = None;
            for i in 0..arr.count {
                let s = self.map_sym(arr.elem0.offset(i));
                let e0 = *elem0.get_or_insert(s);
                debug_assert_eq!(s, e0.offset(i), "spliced array elements stay consecutive");
            }
            ArrayInfo {
                count: arr.count,
                elem0: elem0.unwrap_or(flat),
            }
        });
        DeclInfo {
            flat,
            width: info.width,
            elem_width: info.elem_width,
            lsb: info.lsb,
            elems,
            // The fragment flattened as its own top; under a prefix its
            // inputs are instance ports, not free top-level inputs.
            is_top_input: false,
        }
    }

    fn map_fx(&mut self, e: &Fx) -> Fx {
        match e {
            Fx::Net(s) => Fx::Net(self.map_sym(*s)),
            Fx::Lit { width, value } => Fx::Lit {
                width: *width,
                value: *value,
            },
            Fx::Fill(b) => Fx::Fill(*b),
            Fx::Unary(op, i) => Fx::Unary(*op, Box::new(self.map_fx(i))),
            Fx::Binary(op, a, b) => {
                Fx::Binary(*op, Box::new(self.map_fx(a)), Box::new(self.map_fx(b)))
            }
            Fx::Ternary(c, t, f) => Fx::Ternary(
                Box::new(self.map_fx(c)),
                Box::new(self.map_fx(t)),
                Box::new(self.map_fx(f)),
            ),
            Fx::Concat(es) => Fx::Concat(es.iter().map(|x| self.map_fx(x)).collect()),
            Fx::Replicate(n, x) => {
                Fx::Replicate(Box::new(self.map_fx(n)), Box::new(self.map_fx(x)))
            }
            Fx::Index(b, i) => Fx::Index(Box::new(self.map_fx(b)), Box::new(self.map_fx(i))),
            Fx::Slice(b, h, l) => Fx::Slice(
                Box::new(self.map_fx(b)),
                Box::new(self.map_fx(h)),
                Box::new(self.map_fx(l)),
            ),
            Fx::SysCall(f, args) => Fx::SysCall(*f, args.iter().map(|x| self.map_fx(x)).collect()),
        }
    }

    fn map_target(&mut self, t: FlatTarget) -> FlatTarget {
        FlatTarget {
            net: self.map_sym(t.net),
            lo: t.lo,
            width: t.width,
        }
    }

    fn map_stmt(&mut self, s: &FlatStmt) -> FlatStmt {
        match s {
            FlatStmt::Block(ss) => FlatStmt::Block(ss.iter().map(|x| self.map_stmt(x)).collect()),
            FlatStmt::If { cond, then, alt } => FlatStmt::If {
                cond: self.map_fx(cond),
                then: Box::new(self.map_stmt(then)),
                alt: alt.as_ref().map(|a| Box::new(self.map_stmt(a))),
            },
            FlatStmt::Assign { target, rhs } => FlatStmt::Assign {
                target: self.map_target(*target),
                rhs: self.map_fx(rhs),
            },
            FlatStmt::Empty => FlatStmt::Empty,
        }
    }
}

impl Flattener<'_> {
    /// Splices a pre-flattened module fragment into this flattening
    /// under `prefix`, returning the child scope and port directions in
    /// the shape [`InstanceRouter::flatten_external`] hands back.
    ///
    /// Every fragment symbol is re-interned into the design arena with
    /// the prefix applied, so the resulting items are exactly what
    /// in-file inlining of the same module under the same prefix would
    /// have produced (clock/reset adoption included).
    pub(crate) fn splice_fragment(
        &mut self,
        frag: &Fragment,
        prefix: &str,
    ) -> (Scope, Vec<(String, PortDir)>) {
        let mut sp = Splicer {
            itn: &mut self.itn,
            frag,
            prefix,
            map: vec![None; frag.itn.len()],
        };
        for item in &frag.items {
            let mapped = match item {
                FlatItem::Decl(info) => FlatItem::Decl(sp.map_decl(*info)),
                FlatItem::Assign { target, rhs } => FlatItem::Assign {
                    target: sp.map_target(*target),
                    rhs: sp.map_fx(rhs),
                },
                FlatItem::Proc { clocked, body } => FlatItem::Proc {
                    clocked: *clocked,
                    body: sp.map_stmt(body),
                },
            };
            self.items.push(mapped);
        }
        // The child scope the instantiation wires ports through: keys
        // stay unprefixed (looked up by source port name), entries move
        // to the design arena.
        let mut scope = Scope::default();
        for (&k, entry) in &frag.scope {
            let mapped = match entry {
                ScopeEntry::Const(v) => ScopeEntry::Const(*v),
                ScopeEntry::Net(info) => ScopeEntry::Net(sp.map_decl(*info)),
            };
            let key = sp.itn.intern(frag.itn.resolve(k));
            scope.insert(key, mapped);
        }
        // First-of-kind clock/reset adoption, matching the in-file walk
        // (which records the first posedge/negedge signal it meets).
        if self.clock_name.is_none() {
            self.clock_name = frag.clock_name.clone();
        }
        if self.reset_name.is_none() {
            self.reset_name = frag.reset_name.clone();
        }
        (scope, frag.ports.clone())
    }
}

/// Passes A and B over the flattened items (base followed by
/// per-binding extras), producing the final netlist. Takes the
/// flattener's arena by value; it is frozen into the returned netlist.
fn build_netlist(
    base: &[FlatItem],
    extra: &[FlatItem],
    itn: Interner,
    clock_name: &Option<String>,
    reset_name: &Option<String>,
    warnings: &[String],
    top_params: &[(String, u128)],
) -> Result<Netlist> {
    let items = || base.iter().chain(extra.iter());
    let mut b = Builder {
        itn,
        netlist: Netlist::default(),
        atom_of_range: SymbolMap::default(),
        decls: SymbolMap::default(),
        decl_order: Vec::new(),
        drivers: SymbolMap::default(),
        array_elem0: SymbolMap::default(),
    };
    b.netlist.clock_name = clock_name.clone();
    b.netlist.reset_name = reset_name.clone();
    b.netlist.warnings = warnings.to_vec();
    b.netlist.params = top_params.to_vec();

    // Reserve the maps up front: one entry per declaration (arrays
    // expand to their elements), so the hot inserts never rehash.
    let decl_estimate: usize = items()
        .map(|it| match it {
            FlatItem::Decl(info) => match info.elems {
                Some(arr) => arr.count as usize,
                None => 1,
            },
            _ => 0,
        })
        .sum();
    b.decls.reserve(decl_estimate);
    b.decl_order.reserve(decl_estimate);
    b.drivers.reserve(decl_estimate);
    // Pass A: declarations.
    for item in items() {
        if let FlatItem::Decl(info) = item {
            match info.elems {
                None => b.declare(info.flat, *info),
                Some(arr) => {
                    b.netlist.arrays.insert(info.flat, arr.count);
                    b.array_elem0.insert(info.flat, arr.elem0);
                    for i in 0..arr.count {
                        let mut e = *info;
                        e.flat = arr.elem0.offset(i);
                        e.elems = None;
                        b.declare(e.flat, e);
                    }
                }
            }
        }
    }
    // Pass A: drivers.
    for (tag, item) in items().enumerate() {
        match item {
            FlatItem::Decl(_) => {}
            FlatItem::Assign { target, .. } => {
                b.add_driver(target, DriverKind::Comb, tag)?;
            }
            FlatItem::Proc { clocked, body } => {
                let kind = if *clocked {
                    DriverKind::Reg
                } else {
                    DriverKind::Comb
                };
                let mut targets = Vec::new();
                collect_targets(body, &mut targets);
                // Sort by resolved name (not symbol index) so driver
                // registration order — and therefore which conflict is
                // reported first — matches the string-keyed behaviour.
                targets.sort_by(|x, y| {
                    b.itn
                        .resolve(x.net)
                        .cmp(b.itn.resolve(y.net))
                        .then(x.lo.cmp(&y.lo))
                });
                targets.dedup_by(|x, y| x.net == y.net && x.lo == y.lo && x.width == y.width);
                for t in &targets {
                    b.add_driver(t, kind, tag)?;
                }
            }
        }
    }
    b.finalize_bindings()?;

    // Detect the reset atom (by sensitivity-list convention or name).
    let reset_name = b.netlist.reset_name.clone().or_else(|| {
        ["reset_", "rst_n", "resetn", "reset_n"]
            .iter()
            .find(|n| {
                b.itn
                    .lookup(n)
                    .is_some_and(|s| b.netlist.nets.contains_key(&s))
            })
            .map(|n| n.to_string())
    });
    b.netlist.reset_name = reset_name.clone();
    let reset_atom: Option<AtomId> = reset_name.as_deref().and_then(|n| {
        let s = b.itn.lookup(n)?;
        b.netlist.nets.get(&s).and_then(|bind| {
            if bind.segs.len() == 1 && bind.segs[0].lo == 0 {
                Some(bind.segs[0].atom)
            } else {
                None
            }
        })
    });

    // Pass B: expressions.
    for item in items() {
        match item {
            FlatItem::Decl(_) => {}
            FlatItem::Assign { target, rhs } => {
                let atom = b.atom_of(target)?;
                let width = b.netlist.atom_width(atom);
                let nx = b.elab_expr(rhs, Some(width))?;
                let nx = resize(nx, width, &b.netlist);
                match &mut b.netlist.atoms[atom.index()].kind {
                    k @ AtomKind::Comb(_) => *k = AtomKind::Comb(nx),
                    _ => unreachable!("assign drives a comb atom"),
                }
            }
            FlatItem::Proc { clocked, body } => {
                let mut env: SymbolMap<AtomId, Nx> = SymbolMap::default();
                b.exec(body, &mut env)?;
                for (atom, nx) in env {
                    let width = b.netlist.atom_width(atom);
                    let nx = resize(nx, width, &b.netlist);
                    if *clocked {
                        let init = init_eval(&nx, reset_atom, &b.netlist).unwrap_or(0);
                        b.netlist.atoms[atom.index()].kind = AtomKind::Reg {
                            next: nx,
                            init: mask(init, width),
                        };
                    } else {
                        b.netlist.atoms[atom.index()].kind = AtomKind::Comb(nx);
                    }
                }
            }
        }
    }

    // Validate: no combinational cycles.
    b.netlist
        .comb_topo_order()
        .map_err(|n| ElabError::new(format!("combinational cycle through '{n}'")))?;
    // Freeze the arena into the netlist: every symbol in the net and
    // array maps resolves against it from here on.
    b.netlist.syms = Arc::new(b.itn);
    Ok(b.netlist)
}

fn collect_targets(s: &FlatStmt, out: &mut Vec<FlatTarget>) {
    match s {
        FlatStmt::Block(ss) => {
            for x in ss {
                collect_targets(x, out);
            }
        }
        FlatStmt::If { then, alt, .. } => {
            collect_targets(then, out);
            if let Some(a) = alt {
                collect_targets(a, out);
            }
        }
        FlatStmt::Assign { target, .. } => out.push(*target),
        FlatStmt::Empty => {}
    }
}

impl Builder {
    fn declare(&mut self, name: Symbol, info: DeclInfo) {
        if self.decls.contains_key(&name) {
            // Re-declaration: keep the first (ports declared in both the
            // header and body).
            return;
        }
        self.decl_order.push(name);
        self.decls.insert(name, info);
    }

    fn add_driver(&mut self, t: &FlatTarget, kind: DriverKind, tag: usize) -> Result<()> {
        if !self.decls.contains_key(&t.net) {
            return Err(ElabError::new(format!(
                "assignment to undeclared net '{}'",
                self.itn.resolve(t.net)
            )));
        }
        let entry = self.drivers.entry(t.net).or_default();
        for &(lo, w, k, existing_tag) in entry.iter() {
            let overlap = t.lo < lo + w && lo < t.lo + t.width;
            if overlap {
                // The same range driven again from the same item (one
                // process assigning on several paths) shares one atom;
                // anything else is a multiple-driver conflict.
                if lo == t.lo && w == t.width && k == kind && existing_tag == tag {
                    return Ok(());
                }
                return Err(ElabError::new(format!(
                    "conflicting drivers for '{}' bits [{}, {})",
                    self.itn.resolve(t.net),
                    t.lo,
                    t.lo + t.width
                )));
            }
        }
        entry.push((t.lo, t.width, kind, tag));
        Ok(())
    }

    fn finalize_bindings(&mut self) -> Result<()> {
        // Split borrows: atom names resolve straight out of the arena
        // (no per-net String) while the netlist and range map mutate.
        let decl_order = std::mem::take(&mut self.decl_order);
        let Builder {
            itn,
            netlist,
            atom_of_range,
            decls,
            drivers,
            ..
        } = self;
        #[allow(clippy::too_many_arguments)]
        fn add_atom(
            netlist: &mut Netlist,
            atom_of_range: &mut SymbolMap<(Symbol, u32, u32), AtomId>,
            name: Symbol,
            name_s: &str,
            full_width: u32,
            lo: u32,
            w: u32,
            kind: AtomKind,
        ) -> AtomId {
            let id = AtomId(netlist.atoms.len() as u32);
            let atom_name = if lo == 0 && w == full_width {
                name_s.to_string()
            } else {
                format!("{name_s}[{}:{}]", lo + w - 1, lo)
            };
            netlist.atoms.push(AtomDef {
                name: atom_name,
                width: w,
                kind,
            });
            atom_of_range.insert((name, lo, w), id);
            id
        }
        netlist.nets.reserve(decl_order.len());
        atom_of_range.reserve(decl_order.len());
        for name in decl_order {
            let info = decls[&name];
            let name_s = itn.resolve(name);
            let mut ranges = drivers.remove(&name).unwrap_or_default();
            ranges.sort_by_key(|d| d.0);
            let mut segs = Vec::new();
            let mut cursor = 0u32;
            for (lo, w, kind, _) in ranges {
                if lo > cursor {
                    // Undriven gap -> free input.
                    let gap_atom = add_atom(
                        netlist,
                        atom_of_range,
                        name,
                        name_s,
                        info.width,
                        cursor,
                        lo - cursor,
                        AtomKind::Input,
                    );
                    if !info.is_top_input {
                        netlist
                            .warnings
                            .push(format!("undriven bits of '{name_s}' become free inputs"));
                    }
                    segs.push(Seg {
                        atom: gap_atom,
                        lo: 0,
                        width: lo - cursor,
                    });
                }
                let placeholder = match kind {
                    DriverKind::Comb => AtomKind::Comb(Nx::constant(w, 0)),
                    DriverKind::Reg => AtomKind::Reg {
                        next: Nx::constant(w, 0),
                        init: 0,
                    },
                };
                let id = add_atom(
                    netlist,
                    atom_of_range,
                    name,
                    name_s,
                    info.width,
                    lo,
                    w,
                    placeholder,
                );
                segs.push(Seg {
                    atom: id,
                    lo: 0,
                    width: w,
                });
                cursor = lo + w;
            }
            if cursor < info.width {
                let gap_atom = add_atom(
                    netlist,
                    atom_of_range,
                    name,
                    name_s,
                    info.width,
                    cursor,
                    info.width - cursor,
                    AtomKind::Input,
                );
                if !info.is_top_input && cursor != 0 {
                    netlist
                        .warnings
                        .push(format!("undriven bits of '{name_s}' become free inputs"));
                }
                segs.push(Seg {
                    atom: gap_atom,
                    lo: 0,
                    width: info.width - cursor,
                });
            }
            netlist.nets.insert(
                name,
                NetBinding {
                    width: info.width,
                    elem_width: info.elem_width,
                    segs,
                },
            );
        }
        Ok(())
    }

    fn atom_of(&self, t: &FlatTarget) -> Result<AtomId> {
        self.atom_of_range
            .get(&(t.net, t.lo, t.width))
            .copied()
            .ok_or_else(|| {
                ElabError::new(format!(
                    "internal: no atom for '{}' [{}, {})",
                    self.itn.resolve(t.net),
                    t.lo,
                    t.lo + t.width
                ))
            })
    }

    fn exec(&mut self, s: &FlatStmt, env: &mut SymbolMap<AtomId, Nx>) -> Result<()> {
        match s {
            FlatStmt::Block(ss) => {
                for x in ss {
                    self.exec(x, env)?;
                }
            }
            FlatStmt::If { cond, then, alt } => {
                let sel = self.elab_bool(cond)?;
                let mut env_t = env.clone();
                self.exec(then, &mut env_t)?;
                // Without an else branch the fall-through environment is
                // `env` itself; no clone needed.
                let env_e: Option<SymbolMap<AtomId, Nx>> = match alt {
                    Some(a) => {
                        let mut e = env.clone();
                        self.exec(a, &mut e)?;
                        Some(e)
                    }
                    None => None,
                };
                let else_keys = env_e.as_ref().unwrap_or(env).keys();
                let mut keys: Vec<AtomId> = env_t.keys().chain(else_keys).copied().collect();
                keys.sort();
                keys.dedup();
                for k in keys {
                    let orig = || self.orig_value(k);
                    let vt = env_t.get(&k).cloned().unwrap_or_else(orig);
                    let ve = env_e
                        .as_ref()
                        .unwrap_or(env)
                        .get(&k)
                        .cloned()
                        .unwrap_or_else(orig);
                    if vt == ve {
                        env.insert(k, vt);
                    } else {
                        let w = self.netlist.atom_width(k);
                        env.insert(
                            k,
                            Nx::Mux {
                                sel: Box::new(sel.clone()),
                                t: Box::new(resize(vt, w, &self.netlist)),
                                e: Box::new(resize(ve, w, &self.netlist)),
                            },
                        );
                    }
                }
            }
            FlatStmt::Assign { target, rhs } => {
                let atom = self.atom_of(target)?;
                let w = self.netlist.atom_width(atom);
                let nx = self.elab_expr(rhs, Some(w))?;
                env.insert(atom, resize(nx, w, &self.netlist));
            }
            FlatStmt::Empty => {}
        }
        Ok(())
    }

    /// The value an atom holds if a process path does not assign it:
    /// registers keep their state; combinational defaults to zero
    /// (documented deviation for incomplete combinational assignment).
    fn orig_value(&self, a: AtomId) -> Nx {
        match self.netlist.atoms[a.index()].kind {
            AtomKind::Reg { .. } => Nx::Atom(a),
            _ => Nx::constant(self.netlist.atom_width(a), 0),
        }
    }

    fn elab_bool(&mut self, e: &Fx) -> Result<Nx> {
        let nx = self.elab_expr(e, None)?;
        Ok(to_bool(nx, &self.netlist))
    }

    fn width_of(&self, nx: &Nx) -> u32 {
        let nl = &self.netlist;
        nx.width(&|a| nl.atom_width(a))
    }

    fn elab_expr(&mut self, e: &Fx, ctx: Option<u32>) -> Result<Nx> {
        Ok(match e {
            Fx::Net(sym) => match self.netlist.nets.get(sym) {
                Some(binding) => binding.read(),
                None => {
                    return Err(ElabError::new(format!(
                        "unknown signal '{}'",
                        self.itn.resolve(*sym)
                    )))
                }
            },
            Fx::Lit { width, value } => {
                let w = width.unwrap_or_else(|| {
                    let needed = 128 - value.leading_zeros();
                    32u32.max(needed).min(MAX_WIDTH)
                });
                Nx::constant(w, *value)
            }
            Fx::Fill(b) => {
                let w = ctx.ok_or_else(|| {
                    ElabError::new("cannot determine width of '0/'1 fill literal here")
                })?;
                Nx::constant(w, if *b { u128::MAX } else { 0 })
            }
            Fx::Unary(op, inner) => {
                let i = self.elab_expr(inner, None)?;
                match op {
                    UnaryOp::LogNot => Nx::Not(Box::new(to_bool(i, &self.netlist))),
                    UnaryOp::BitNot => Nx::Not(Box::new(i)),
                    UnaryOp::Neg => Nx::Neg(Box::new(i)),
                    UnaryOp::Pos => i,
                    UnaryOp::RedAnd => Nx::Reduce {
                        op: NxRed::And,
                        inner: Box::new(i),
                    },
                    UnaryOp::RedOr => Nx::Reduce {
                        op: NxRed::Or,
                        inner: Box::new(i),
                    },
                    UnaryOp::RedXor => Nx::Reduce {
                        op: NxRed::Xor,
                        inner: Box::new(i),
                    },
                    UnaryOp::RedNand => Nx::Not(Box::new(Nx::Reduce {
                        op: NxRed::And,
                        inner: Box::new(i),
                    })),
                    UnaryOp::RedNor => Nx::Not(Box::new(Nx::Reduce {
                        op: NxRed::Or,
                        inner: Box::new(i),
                    })),
                    UnaryOp::RedXnor => Nx::Not(Box::new(Nx::Reduce {
                        op: NxRed::Xor,
                        inner: Box::new(i),
                    })),
                }
            }
            Fx::Binary(op, a, b) => self.elab_binary(*op, a, b, ctx)?,
            Fx::Ternary(c, t, f) => {
                let sel = self.elab_bool(c)?;
                let tv = self.elab_expr(t, ctx)?;
                let ev = self.elab_expr(f, ctx)?;
                let w = self
                    .width_of(&tv)
                    .max(self.width_of(&ev))
                    .max(ctx.unwrap_or(0));
                Nx::Mux {
                    sel: Box::new(sel),
                    t: Box::new(resize(tv, w, &self.netlist)),
                    e: Box::new(resize(ev, w, &self.netlist)),
                }
            }
            Fx::Concat(parts) => {
                // Source order is MSB-first; Nx concat is LSB-first.
                let mut vec = Vec::with_capacity(parts.len());
                for p in parts.iter().rev() {
                    vec.push(self.elab_expr(p, None)?);
                }
                Nx::Concat(vec)
            }
            Fx::Replicate(n, inner) => {
                let count = fx_const_eval(n, &self.itn)?;
                let count = u32::try_from(count)
                    .map_err(|_| ElabError::new("replication count too large"))?;
                if count == 0 {
                    return Err(ElabError::new("zero replication"));
                }
                let v = self.elab_expr(inner, None)?;
                if self.width_of(&v) * count > MAX_WIDTH {
                    return Err(ElabError::new("replication exceeds width limit"));
                }
                Nx::Concat(vec![v; count as usize])
            }
            Fx::Index(base, idx) => self.elab_index(base, idx)?,
            Fx::Slice(base, hi, lo) => {
                let sym = match base.as_ref() {
                    Fx::Net(n) => *n,
                    _ => return Err(ElabError::new("part-select base must be a signal")),
                };
                let binding = self
                    .netlist
                    .nets
                    .get(&sym)
                    .ok_or_else(|| {
                        ElabError::new(format!("unknown signal '{}'", self.itn.resolve(sym)))
                    })?
                    .clone();
                let hi = fx_const_eval(hi, &self.itn)?;
                let lo = fx_const_eval(lo, &self.itn)?;
                let (hi, lo) = (
                    u32::try_from(hi).map_err(|_| ElabError::new("slice bound too large"))?,
                    u32::try_from(lo).map_err(|_| ElabError::new("slice bound too large"))?,
                );
                if lo > hi || hi >= binding.width {
                    return Err(ElabError::new(format!(
                        "slice out of range on '{}'",
                        self.itn.resolve(sym)
                    )));
                }
                binding.read_range(lo, hi - lo + 1)
            }
            Fx::SysCall(f, args) => self.elab_syscall(*f, args)?,
        })
    }

    fn elab_binary(&mut self, op: BinaryOp, a: &Fx, b: &Fx, ctx: Option<u32>) -> Result<Nx> {
        use BinaryOp as B;
        // Logical connectives work on booleans.
        if matches!(op, B::LogAnd | B::LogOr) {
            let x = self.elab_bool(a)?;
            let y = self.elab_bool(b)?;
            return Ok(Nx::Bin {
                op: if op == B::LogAnd {
                    NxBin::And
                } else {
                    NxBin::Or
                },
                a: Box::new(x),
                b: Box::new(y),
            });
        }
        // Shifts: rhs is self-determined.
        if matches!(op, B::Shl | B::Shr | B::AShl | B::AShr) {
            let x = self.elab_expr(a, ctx)?;
            let y = self.elab_expr(b, None)?;
            let w = self.width_of(&x).max(ctx.unwrap_or(0));
            let x = resize(x, w, &self.netlist);
            // `>>>`/`<<<` on unsigned operands behave as logical shifts
            // (all nets are unsigned in this subset).
            let nxop = match op {
                B::Shl | B::AShl => NxBin::Shl,
                _ => NxBin::LShr,
            };
            return Ok(Nx::Bin {
                op: nxop,
                a: Box::new(x),
                b: Box::new(y),
            });
        }
        // Fill literals take the width of the opposite operand.
        let (x, y) = if matches!(a, Fx::Fill(_)) {
            let y = self.elab_expr(b, None)?;
            let w = self.width_of(&y);
            (self.elab_expr(a, Some(w))?, y)
        } else if matches!(b, Fx::Fill(_)) {
            let x = self.elab_expr(a, None)?;
            let w = self.width_of(&x);
            let y = self.elab_expr(b, Some(w))?;
            (x, y)
        } else {
            (self.elab_expr(a, None)?, self.elab_expr(b, None)?)
        };
        let mut w = self.width_of(&x).max(self.width_of(&y));
        let is_pred = matches!(
            op,
            B::Eq | B::Neq | B::CaseEq | B::CaseNeq | B::Lt | B::Le | B::Gt | B::Ge
        );
        if !is_pred {
            w = w.max(ctx.unwrap_or(0));
        }
        let x = resize(x, w, &self.netlist);
        let y = resize(y, w, &self.netlist);
        let bin = |op, a: Nx, b: Nx| Nx::Bin {
            op,
            a: Box::new(a),
            b: Box::new(b),
        };
        Ok(match op {
            B::Add => bin(NxBin::Add, x, y),
            B::Sub => bin(NxBin::Sub, x, y),
            B::Mul => bin(NxBin::Mul, x, y),
            B::Div => bin(NxBin::Div, x, y),
            B::Mod => bin(NxBin::Mod, x, y),
            B::BitAnd => bin(NxBin::And, x, y),
            B::BitOr => bin(NxBin::Or, x, y),
            B::BitXor => bin(NxBin::Xor, x, y),
            B::BitXnor => Nx::Not(Box::new(bin(NxBin::Xor, x, y))),
            B::Eq | B::CaseEq => bin(NxBin::Eq, x, y),
            B::Neq | B::CaseNeq => Nx::Not(Box::new(bin(NxBin::Eq, x, y))),
            B::Lt => bin(NxBin::Ult, x, y),
            B::Le => bin(NxBin::Ule, x, y),
            B::Gt => bin(NxBin::Ult, y, x),
            B::Ge => bin(NxBin::Ule, y, x),
            B::LogAnd | B::LogOr | B::Shl | B::Shr | B::AShl | B::AShr => unreachable!(),
        })
    }

    fn elab_index(&mut self, base: &Fx, idx: &Fx) -> Result<Nx> {
        let sym = match base {
            Fx::Net(n) => *n,
            _ => return Err(ElabError::new("bit-select base must be a signal")),
        };
        // Unpacked array element?
        if let Some(&count) = self.netlist.arrays.get(&sym) {
            let elem0 = self.array_elem0.get(&sym).copied();
            let elem_binding = |b: &Builder, i: u32| {
                elem0
                    .and_then(|e0| b.netlist.nets.get(&e0.offset(i)))
                    .ok_or_else(|| {
                        ElabError::new(format!(
                            "unknown array element '{}[{i}]'",
                            b.itn.resolve(sym)
                        ))
                    })
                    .map(|binding| binding.read())
            };
            if let Ok(i) = fx_const_eval(idx, &self.itn) {
                if i >= u128::from(count) {
                    return Err(ElabError::new(format!(
                        "array index out of range on '{}'",
                        self.itn.resolve(sym)
                    )));
                }
                return elem_binding(self, i as u32);
            }
            // Dynamic array read: mux chain over elements.
            let sel = self.elab_expr(idx, None)?;
            let mut acc: Option<Nx> = None;
            for i in 0..count {
                let elem = elem_binding(self, i)?;
                acc = Some(match acc {
                    None => elem,
                    Some(prev) => {
                        let sw = self.width_of(&sel);
                        Nx::Mux {
                            sel: Box::new(Nx::Bin {
                                op: NxBin::Eq,
                                a: Box::new(sel.clone()),
                                b: Box::new(Nx::constant(sw, u128::from(i))),
                            }),
                            t: Box::new(elem),
                            e: Box::new(prev),
                        }
                    }
                });
            }
            return acc
                .ok_or_else(|| ElabError::new(format!("empty array '{}'", self.itn.resolve(sym))));
        }
        let binding = self
            .netlist
            .nets
            .get(&sym)
            .ok_or_else(|| ElabError::new(format!("unknown signal '{}'", self.itn.resolve(sym))))?
            .clone();
        let ew = binding.elem_width;
        match fx_const_eval(idx, &self.itn) {
            Ok(i) => {
                let i = u32::try_from(i).map_err(|_| ElabError::new("index too large"))?;
                let lo = i * ew;
                if lo + ew > binding.width {
                    return Err(ElabError::new(format!(
                        "index out of range on '{}'",
                        self.itn.resolve(sym)
                    )));
                }
                Ok(binding.read_range(lo, ew))
            }
            Err(_) => {
                let index = self.elab_expr(idx, None)?;
                Ok(Nx::DynSlice {
                    inner: Box::new(binding.read()),
                    index: Box::new(index),
                    elem_width: ew,
                })
            }
        }
    }

    fn elab_syscall(&mut self, f: SysFunc, args: &[Fx]) -> Result<Nx> {
        let one_arg = || -> Result<&Fx> {
            if args.len() == 1 {
                Ok(&args[0])
            } else {
                Err(ElabError::new(format!(
                    "${} takes exactly one argument",
                    f.name()
                )))
            }
        };
        Ok(match f {
            SysFunc::Countones => {
                let v = self.elab_expr(one_arg()?, None)?;
                Nx::Countones {
                    inner: Box::new(v),
                    width: 8,
                }
            }
            SysFunc::Onehot => Nx::Onehot(Box::new(self.elab_expr(one_arg()?, None)?)),
            SysFunc::Onehot0 => Nx::Onehot0(Box::new(self.elab_expr(one_arg()?, None)?)),
            SysFunc::Bits => {
                let v = self.elab_expr(one_arg()?, None)?;
                Nx::constant(32, u128::from(self.width_of(&v)))
            }
            SysFunc::Clog2 => {
                let v = fx_const_eval(one_arg()?, &self.itn)?;
                Nx::constant(32, u128::from(clog2(v)))
            }
            SysFunc::Past | SysFunc::Rose | SysFunc::Fell | SysFunc::Stable | SysFunc::Changed => {
                return Err(ElabError::new(format!(
                    "${} is only valid inside assertions, not RTL",
                    f.name()
                )))
            }
        })
    }
}
/// Zero-extends or truncates to `width`.
pub(crate) fn resize(nx: Nx, width: u32, nl: &Netlist) -> Nx {
    if nx.width(&|a| nl.atom_width(a)) == width {
        nx
    } else {
        Nx::Resize {
            inner: Box::new(nx),
            width,
        }
    }
}

/// Verilog truthiness: any bit set.
pub(crate) fn to_bool(nx: Nx, nl: &Netlist) -> Nx {
    if nx.width(&|a| nl.atom_width(a)) == 1 {
        nx
    } else {
        Nx::Reduce {
            op: NxRed::Or,
            inner: Box::new(nx),
        }
    }
}

/// Partial constant evaluation of a next-state expression with the reset
/// atom pinned to 0 (asserted active-low reset). Returns the register's
/// reset value when it is a constant.
///
/// Atom references are chased through combinational aliases so a reset
/// expression that reaches the reset input via an inlined instance port
/// (`dut.reset_` bound to the top-level `reset_`) still pins correctly;
/// without this, registers of instantiated modules silently lose
/// nonzero reset values. Recursion is depth-bounded because this runs
/// before the combinational-cycle check.
fn init_eval(nx: &Nx, reset: Option<AtomId>, nl: &Netlist) -> Option<u128> {
    const MAX_DEPTH: u32 = 256;
    fn eval(nx: &Nx, reset: Option<AtomId>, nl: &Netlist, depth: u32) -> Option<u128> {
        if depth >= MAX_DEPTH {
            return None;
        }
        let eval = |nx: &Nx| eval(nx, reset, nl, depth + 1);
        match nx {
            Nx::Const { value, .. } => Some(*value),
            Nx::Atom(a) => {
                if Some(*a) == reset {
                    Some(0)
                } else if let AtomKind::Comb(inner) = &nl.atom(*a).kind {
                    eval(inner)
                } else {
                    None
                }
            }
            Nx::Slice { inner, lo, width } => {
                let v = eval(inner)?;
                Some(mask(v >> lo, *width))
            }
            Nx::Not(i) => {
                let w = i.width(&|a| nl.atom_width(a));
                Some(mask(!eval(i)?, w))
            }
            Nx::Neg(i) => {
                let w = i.width(&|a| nl.atom_width(a));
                Some(mask(eval(i)?.wrapping_neg(), w))
            }
            Nx::Reduce { op, inner } => {
                let v = eval(inner)?;
                let w = inner.width(&|a| nl.atom_width(a));
                Some(match op {
                    NxRed::Or => u128::from(v != 0),
                    NxRed::And => u128::from(v == mask(u128::MAX, w)),
                    NxRed::Xor => u128::from(v.count_ones() % 2 == 1),
                })
            }
            Nx::Mux { sel, t, e } => match eval(sel) {
                Some(s) => {
                    if s != 0 {
                        eval(t)
                    } else {
                        eval(e)
                    }
                }
                None => {
                    // Both branches agreeing is still constant.
                    let vt = eval(t)?;
                    let ve = eval(e)?;
                    if vt == ve {
                        Some(vt)
                    } else {
                        None
                    }
                }
            },
            Nx::Resize { inner, width } => Some(mask(eval(inner)?, *width)),
            Nx::Concat(parts) => {
                let mut acc: u128 = 0;
                let mut off = 0u32;
                for p in parts {
                    let v = eval(p)?;
                    acc |= v << off;
                    off += p.width(&|a| nl.atom_width(a));
                }
                Some(acc)
            }
            Nx::Bin { op, a, b } => {
                let w = a.width(&|x| nl.atom_width(x));
                let x = eval(a)?;
                let y = eval(b)?;
                Some(match op {
                    NxBin::Add => mask(x.wrapping_add(y), w),
                    NxBin::Sub => mask(x.wrapping_sub(y), w),
                    NxBin::And => x & y,
                    NxBin::Or => x | y,
                    NxBin::Xor => x ^ y,
                    NxBin::Eq => u128::from(x == y),
                    NxBin::Ult => u128::from(x < y),
                    NxBin::Ule => u128::from(x <= y),
                    _ => return None,
                })
            }
            _ => None,
        }
    }
    eval(nx, reset, nl, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::parse_source;

    fn elab(src: &str, top: &str) -> Netlist {
        let f = parse_source(src).unwrap();
        elaborate(&f, top).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn simple_comb_module() {
        let nl = elab(
            "module m (a, b, y);\ninput a; input b; output y;\nassign y = a & b;\nendmodule\n",
            "m",
        );
        assert_eq!(nl.inputs().count(), 2);
        let y = nl.net("y").unwrap();
        assert_eq!(y.width, 1);
        match &nl.atom(y.segs[0].atom).kind {
            AtomKind::Comb(_) => {}
            other => panic!("expected comb, got {other:?}"),
        }
    }

    #[test]
    fn register_with_async_reset_extracts_init() {
        let nl = elab(
            "module m (clk, reset_, q);\ninput clk; input reset_; output reg [3:0] q;\n\
             always_ff @(posedge clk or negedge reset_) begin\n\
             if (!reset_) q <= 4'd5; else q <= q + 4'd1;\nend\nendmodule\n",
            "m",
        );
        let q = nl.net("q").unwrap();
        match &nl.atom(q.segs[0].atom).kind {
            AtomKind::Reg { init, .. } => assert_eq!(*init, 5),
            other => panic!("expected reg, got {other:?}"),
        }
        assert_eq!(nl.reset_name.as_deref(), Some("reset_"));
        assert_eq!(nl.clock_name.as_deref(), Some("clk"));
    }

    #[test]
    fn sync_reset_by_name_convention() {
        let nl = elab(
            "module m (clk, reset_, q);\ninput clk; input reset_; output reg q;\n\
             always @(posedge clk) begin\nif (!reset_) q <= 1'b1; else q <= !q;\nend\nendmodule\n",
            "m",
        );
        let q = nl.net("q").unwrap();
        match &nl.atom(q.segs[0].atom).kind {
            AtomKind::Reg { init, .. } => assert_eq!(*init, 1),
            other => panic!("expected reg, got {other:?}"),
        }
    }

    #[test]
    fn case_desugars_and_merges() {
        let nl = elab(
            "module m (clk, s, n);\ninput clk; input [1:0] s; output [1:0] n;\n\
             reg [1:0] nr;\nassign n = nr;\n\
             always_comb begin\ncase (s)\n2'b00: nr = 2'b10;\n2'b01: nr = 2'b11;\n\
             default: nr = 2'b00;\nendcase\nend\nendmodule\n",
            "m",
        );
        let nr = nl.net("nr").unwrap();
        assert!(matches!(nl.atom(nr.segs[0].atom).kind, AtomKind::Comb(_)));
    }

    #[test]
    fn generate_for_unrolls() {
        let nl = elab(
            "module m (clk, d, q);\ninput clk; input d; output q;\n\
             parameter DEPTH = 3;\nreg [DEPTH:0] pipe;\n\
             always @(posedge clk) pipe[0] <= d;\n\
             for (genvar i = 1; i <= DEPTH; i++) begin : g\n\
             always @(posedge clk) pipe[i] <= pipe[i-1];\nend\n\
             assign q = pipe[DEPTH];\nendmodule\n",
            "m",
        );
        // pipe has 4 register atoms (one per bit range).
        let pipe = nl.net("pipe").unwrap();
        assert_eq!(pipe.segs.len(), 4);
        assert_eq!(nl.regs().count(), 4);
    }

    #[test]
    fn hierarchy_flattens_with_prefixes() {
        let src = "module child (i, o);\ninput [3:0] i; output [3:0] o;\n\
                   assign o = i + 4'd1;\nendmodule\n\
                   module top (a, y);\ninput [3:0] a; output [3:0] y;\n\
                   child u0 (.i(a), .o(y));\nendmodule\n";
        let nl = elab(src, "top");
        assert!(nl.net("u0.i").is_some());
        assert!(nl.net("u0.o").is_some());
        assert!(nl.net("y").is_some());
    }

    #[test]
    fn parameter_overrides_apply() {
        let src = "module child (o);\nparameter W = 2;\noutput [W-1:0] o;\n\
                   assign o = 'd0;\nendmodule\n\
                   module top (y);\noutput [7:0] y;\nchild #(.W(8)) u0 (.o(y));\nendmodule\n";
        let nl = elab(src, "top");
        assert_eq!(nl.net("u0.o").unwrap().width, 8);
    }

    #[test]
    fn unpacked_array_elements() {
        let nl = elab(
            "module m (clk, we, d, q);\ninput clk; input we; input [7:0] d; output [7:0] q;\n\
             reg [7:0] mem [3:0];\n\
             always @(posedge clk) begin\nif (we) mem[0] <= d;\nmem[1] <= mem[0];\nend\n\
             assign q = mem[1];\nendmodule\n",
            "m",
        );
        assert!(nl.net("mem[0]").is_some());
        assert!(nl.net("mem[3]").is_some());
        assert_eq!(nl.array("mem"), Some(4));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let f = parse_source(
            "module m (a, y);\ninput a; output y;\nassign y = a;\nassign y = !a;\nendmodule\n",
        )
        .unwrap();
        let err = elaborate(&f, "m").unwrap_err();
        assert!(err.message.contains("conflicting drivers"), "{err}");
    }

    #[test]
    fn unknown_signal_rejected() {
        let f = parse_source("module m (y);\noutput y;\nassign y = ghost;\nendmodule\n").unwrap();
        assert!(elaborate(&f, "m").is_err());
    }

    #[test]
    fn comb_cycle_rejected() {
        let f = parse_source(
            "module m (y);\noutput y;\nwire a; wire b;\nassign a = b;\nassign b = a;\n\
             assign y = a;\nendmodule\n",
        )
        .unwrap();
        let err = elaborate(&f, "m").unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
    }

    #[test]
    fn mixed_comb_and_reg_bits_in_one_vector() {
        // The pipeline pattern: ready[0] is combinational, the rest are regs.
        let nl = elab(
            "module m (clk, reset_, in_vld, out_vld);\n\
             input clk; input reset_; input in_vld; output out_vld;\n\
             parameter DEPTH = 2;\nlogic [DEPTH:0] ready;\n\
             assign ready[0] = in_vld;\n\
             for (genvar i = 0; i < DEPTH; i = i + 1) begin : gen\n\
             always @(posedge clk) begin\n\
             if (!reset_) ready[i+1] <= 'd0; else ready[i+1] <= ready[i];\nend\nend\n\
             assign out_vld = ready[DEPTH];\nendmodule\n",
            "m",
        );
        let ready = nl.net("ready").unwrap();
        assert_eq!(ready.segs.len(), 3);
        assert!(matches!(
            nl.atom(ready.segs[0].atom).kind,
            AtomKind::Comb(_)
        ));
        assert!(matches!(
            nl.atom(ready.segs[1].atom).kind,
            AtomKind::Reg { .. }
        ));
    }

    #[test]
    fn extras_reject_design_internal_signals() {
        let src = "module tb (clk, out);\ninput clk; input out;\nendmodule\n";
        let f = parse_source(src).unwrap();
        let extras = sv_parser::parse_snippet("assign foo = hidden_state;\n").unwrap();
        // `foo` undeclared -> error either way.
        assert!(elaborate_with_extras(&f, "tb", &extras).is_err());
    }

    /// Canonical rendering of a netlist for equality checks (the
    /// `nets`/`arrays` maps have no stable iteration order).
    fn fingerprint(nl: &Netlist) -> String {
        let mut nets: Vec<String> = nl.net_names().map(|(n, b)| format!("{n}:{b:?}")).collect();
        nets.sort();
        let mut arrays: Vec<String> = nl.array_names().map(|(n, c)| format!("{n}:{c}")).collect();
        arrays.sort();
        format!(
            "{:?}|{nets:?}|{arrays:?}|{:?}|{:?}|{:?}|{:?}",
            nl.atoms, nl.reset_name, nl.clock_name, nl.warnings, nl.params
        )
    }

    #[test]
    fn split_elaboration_matches_combined() {
        // A testbench instantiating a sequential DUT, with response
        // helper items spliced in: the split path (elaborate the design
        // once, bind the helpers later) must produce the exact netlist
        // the one-pass path builds.
        let src = "module inner (clk, reset_, a, y);\n\
                   input clk; input reset_; input a; output y;\n\
                   reg r;\n\
                   always @(posedge clk) begin\n\
                   if (!reset_) r <= 1'b0; else r <= a;\nend\n\
                   assign y = r;\nendmodule\n\
                   module tb (clk, reset_, a, q);\n\
                   parameter GOLD = 3;\n\
                   input clk; input reset_; input a; input q;\nendmodule\n";
        let f = parse_source(src).unwrap();
        let dut = sv_ast::ModuleItem::Instance(sv_ast::Instance {
            module: "inner".into(),
            name: "dut".into(),
            params: vec![],
            conns: [("clk", "clk"), ("reset_", "reset_"), ("a", "a"), ("y", "q")]
                .into_iter()
                .map(|(p, n)| (p.to_string(), sv_ast::Expr::ident(n)))
                .collect(),
        });
        let helpers = sv_parser::parse_snippet(
            "logic mirror;\nassign mirror = q;\n\
             logic seen;\nalways @(posedge clk) begin seen <= mirror; end\n",
        )
        .unwrap();
        let mut combined = vec![dut.clone()];
        combined.extend(helpers.iter().cloned());
        let one_pass = elaborate_with_extras(&f, "tb", &combined).unwrap();
        let design = elaborate_design(&f, "tb", std::slice::from_ref(&dut)).unwrap();
        let split = design.bind_extras(&helpers).unwrap();
        assert_eq!(fingerprint(&one_pass), fingerprint(&split));
        // The helper-free binding equals the eager base netlist and the
        // one-pass elaboration without helpers.
        let base_one_pass = elaborate_with_extras(&f, "tb", std::slice::from_ref(&dut)).unwrap();
        assert_eq!(fingerprint(&base_one_pass), fingerprint(design.netlist()));
        assert_eq!(
            fingerprint(&design.bind_extras(&[]).unwrap()),
            fingerprint(design.netlist())
        );
        // Parameters harvested once at design elaboration.
        assert_eq!(design.params(), &[("GOLD".to_string(), 3u128)]);
        // Bad helpers fail the binding without poisoning the design.
        let bad = sv_parser::parse_snippet("assign ghost_target = 1'b1;").unwrap();
        assert!(design.bind_extras(&bad).is_err());
        assert!(design.bind_extras(&helpers).is_ok());
    }

    #[test]
    fn clog2_in_localparam() {
        let nl = elab(
            "module m (q);\nparameter FIFO_DEPTH = 4;\n\
             localparam L = $clog2(FIFO_DEPTH);\noutput [L-1:0] q;\n\
             assign q = 'd0;\nendmodule\n",
            "m",
        );
        assert_eq!(nl.net("q").unwrap().width, 2);
    }
}
