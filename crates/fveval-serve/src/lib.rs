//! `fveval-serve` — the persistent evaluation service.
//!
//! FVEval's cost model is dominated by re-running the same formal
//! queries: every table and figure re-proves verdicts an earlier run
//! already settled, and the in-process verdict cache dies with the
//! process. This crate adds the serving layer that amortizes that work
//! *across* processes, in three layers:
//!
//! 1. [`VerdictStore`] — a persistent, content-addressed verdict store:
//!    append-only JSON-lines segments keyed by the engine's `(model,
//!    task-id, content-digest, cfg, sample)` cache key, with atomic
//!    tmp+rename writes, crash-safe torn-tail recovery, and
//!    deterministic compaction. The `fveval` CLI flushes through it
//!    too, so every run — not just the server — survives restarts.
//! 2. [`Server`] — a job queue and worker pool wrapping one shared
//!    [`fveval_core::EvalEngine`], with bounded in-flight jobs and
//!    per-job status (`queued`/`running`/`done`/`failed`) polled over
//!    the wire.
//! 3. The protocol + [`Client`] — minimal HTTP/1.1 over
//!    `std::net::TcpListener` and a hand-rolled [`json`] module (the
//!    same offline-shim philosophy as `crates/shims/`): `POST
//!    /v1/eval`, `GET /v1/jobs/<id>`, `GET /v1/stats`, `POST
//!    /v1/shutdown`, surfaced as the `fveval serve` / `submit` /
//!    `poll` / `stats` / `stop` subcommands.
//!
//! Determinism is the design invariant: a server-mediated evaluation is
//! byte-identical to a direct [`fveval_core::EvalEngine`] run, and a
//! warm restart re-serves it from the store with zero prover calls.
//! See `docs/SERVICE.md` for the wire protocol and store format.

#![deny(missing_docs)]

mod client;
pub mod http;
pub mod json;
mod protocol;
mod server;
mod store;
pub mod testutil;

pub use client::Client;
pub use protocol::{EvalRequest, EvalResult, JobState, JobView, TaskSetRef};
pub use server::{build_tasks, resolve_backends, Server, ServerConfig, DEFAULT_RETAINED_FINISHED};
pub use store::{decode_record, encode_record, VerdictStore};
