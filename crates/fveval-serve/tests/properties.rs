//! Property tests for the serving substrate: the JSON encoder/decoder
//! round-trips arbitrary values, the verdict store round-trips
//! arbitrary record batches — including recovery from a truncated
//! (torn) segment tail — long-poll progress frames survive the wire
//! codec, shard routing is a pure total function of the task digest,
//! and per-shard cache stats merge to the aggregate.

use fveval_core::{CacheStats, SampleEval, VerdictRecord};
use fveval_serve::json::{parse, Json};
use fveval_serve::testutil::TempDir;
use fveval_serve::{shard_of, JobState, JobView, VerdictStore};
use proptest::prelude::*;

/// Small deterministic generator so structured values (strings,
/// vectors, floats) can be derived from plain integer strategies,
/// which is all the offline proptest shim provides.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn string(&mut self) -> String {
        let alphabet = [
            "a", "Z", "0", "_", " ", "\"", "\\", "\n", "\t", "é", "→", "🙂", "\u{1}",
        ];
        let len = self.below(8) as usize;
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn arbitrary_json(mix: &mut Mix, depth: u32) -> Json {
    let pick = if depth == 0 {
        mix.below(5)
    } else {
        mix.below(7)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(mix.below(2) == 0),
        2 => {
            // Mix of integers, fractions, negatives, and extremes.
            let base = match mix.below(4) {
                0 => mix.below(1 << 30) as f64,
                1 => mix.unit(),
                2 => -(mix.unit() * 1e17),
                _ => mix.unit() * 1e-300,
            };
            Json::Num(base)
        }
        3 | 4 => Json::Str(mix.string()),
        5 => Json::Arr(
            (0..mix.below(4))
                .map(|_| arbitrary_json(mix, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..mix.below(4))
                .map(|i| {
                    (
                        format!("k{i}_{}", mix.string()),
                        arbitrary_json(mix, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

fn arbitrary_records(mix: &mut Mix, count: usize) -> Vec<VerdictRecord> {
    (0..count)
        .map(|i| VerdictRecord {
            model: format!("model-{}", mix.below(4)),
            // Unique per record so batches never collide on key.
            task_id: format!("task_{i}_{}", mix.string().replace(['\n', '"'], "x")),
            digest: mix.next(),
            cfg: format!("t{:016x}_n{}_s{}", mix.next(), mix.below(4), mix.below(9)),
            sample: mix.below(6) as u32,
            eval: SampleEval {
                syntax: mix.below(2) == 0,
                func: mix.below(2) == 0,
                partial: mix.below(2) == 0,
                bleu: mix.unit(),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_encode_decode_round_trips(seed in 0u64..u64::MAX) {
        let mut mix = Mix(seed);
        let value = arbitrary_json(&mut mix, 3);
        let text = value.encode();
        let back = parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &value, "decode(encode(v)) == v for {}", text);
        // Encoding is a fixpoint: encode(decode(encode(v))) == encode(v).
        prop_assert_eq!(back.encode(), text);
    }

    #[test]
    fn store_round_trips_arbitrary_batches(seed in 0u64..u64::MAX, n in 1usize..40) {
        let mut mix = Mix(seed);
        let records = arbitrary_records(&mut mix, n);
        let tmp = TempDir::new("prop-roundtrip");
        let mut store = VerdictStore::open(tmp.path()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Split into up to three batches (segments).
        let cut_a = (mix.below(n as u64 + 1)) as usize;
        let cut_b = cut_a + (mix.below((n - cut_a) as u64 + 1)) as usize;
        for batch in [&records[..cut_a], &records[cut_a..cut_b], &records[cut_b..]] {
            store.append(batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        let reopened = VerdictStore::open(tmp.path()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reopened.torn_lines(), 0);
        prop_assert_eq!(reopened.records(), store.records());
        // BLEU survives bit-exactly through text and back.
        let by_task = |rs: &[VerdictRecord]| -> Vec<(String, u64)> {
            let mut v: Vec<(String, u64)> = rs
                .iter()
                .map(|r| (format!("{}/{}/{}", r.task_id, r.sample, r.cfg), r.eval.bleu.to_bits()))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(by_task(&reopened.records()), by_task(&records));
        // Compaction preserves exactly the live set.
        let mut compacted = reopened;
        compacted.compact().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(compacted.segment_count(), 1);
        prop_assert_eq!(compacted.records(), store.records());
    }

    #[test]
    fn store_recovers_from_truncated_tail(seed in 0u64..u64::MAX, n in 2usize..20) {
        let mut mix = Mix(seed);
        let records = arbitrary_records(&mut mix, n);
        let tmp = TempDir::new("prop-torn");
        let mut store = VerdictStore::open(tmp.path()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        store.append(&records).map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Tear the single segment somewhere inside its final line.
        let segment = std::fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .expect("one segment exists");
        let text = std::fs::read_to_string(&segment).unwrap();
        let without_nl = &text[..text.len() - 1];
        let last_line_start = without_nl.rfind('\n').map_or(0, |p| p + 1);
        // Cut strictly inside the final line's JSON object (before its
        // closing brace) so that line cannot decode — even when the cut
        // lands mid-UTF-8-sequence.
        let content_len = (text.len() - 1 - last_line_start) as u64;
        let cut = last_line_start + 1 + mix.below(content_len - 1) as usize;
        std::fs::write(&segment, &text.as_bytes()[..cut]).unwrap();
        let recovered = VerdictStore::open(tmp.path()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(recovered.torn_lines(), 1, "exactly the torn tail is skipped");
        prop_assert_eq!(recovered.len(), n - 1, "every intact line survives");
        // The surviving records are a prefix of the original batch.
        let expected: Vec<VerdictRecord> = {
            let mut keep = records[..n - 1].to_vec();
            keep.sort_by_key(|r| (r.model.clone(), r.task_id.clone(), r.digest, r.cfg.clone(), r.sample));
            keep
        };
        prop_assert_eq!(recovered.records(), expected);
    }

    #[test]
    fn progress_frames_round_trip_the_wire_codec(seed in 0u64..u64::MAX) {
        let mut mix = Mix(seed);
        // Arbitrary long-poll progress frames: any state short of done,
        // any (done, total) pair, shard/position/error present or not.
        let state = match mix.below(3) {
            0 => JobState::Queued,
            1 => JobState::Running,
            _ => JobState::Failed,
        };
        let cases_total = mix.below(1 << 20);
        let frame = JobView {
            id: mix.next(),
            state,
            position: (mix.below(2) == 0).then(|| mix.below(64)),
            cases_done: if cases_total == 0 { 0 } else { mix.below(cases_total + 1) },
            cases_total,
            shard: (mix.below(2) == 0).then(|| mix.below(16)),
            result: None,
            error: (state == JobState::Failed).then(|| mix.string()),
        };
        let wire = frame.encode().encode();
        let parsed = parse(&wire).map_err(TestCaseError::fail)?;
        let back = JobView::decode(&parsed).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, frame, "decode(encode(frame)) == frame for {}", wire);
    }

    #[test]
    fn shard_routing_is_a_pure_total_function_of_the_digest(
        digest in 0u64..u64::MAX,
        shards in 0usize..64,
    ) {
        let shard = shard_of(digest, shards);
        // Total: every digest lands on a valid shard even for the
        // degenerate zero-shard config (clamped to one shard).
        prop_assert!(shard < shards.max(1));
        prop_assert_eq!(shard, (digest % shards.max(1) as u64) as usize);
        // Pure: recomputation never migrates a design's state.
        prop_assert_eq!(shard, shard_of(digest, shards));
        // One shard degenerates to the unsharded server.
        prop_assert_eq!(shard_of(digest, 1), 0);
    }

    #[test]
    fn per_shard_cache_stats_merge_to_the_aggregate(seed in 0u64..u64::MAX, n in 1usize..9) {
        let mut mix = Mix(seed);
        let per_shard: Vec<CacheStats> = (0..n)
            .map(|_| CacheStats {
                hits: mix.below(1 << 30),
                persisted_hits: mix.below(1 << 30),
                misses: mix.below(1 << 30),
                entries: mix.below(1 << 20) as usize,
            })
            .collect();
        let mut merged = CacheStats::default();
        for stats in &per_shard {
            merged.merge(stats);
        }
        // The aggregate `/v1/stats` cache block is exactly the field-wise
        // sum of the shard blocks — nothing dropped, nothing counted twice.
        prop_assert_eq!(merged.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
        prop_assert_eq!(
            merged.persisted_hits,
            per_shard.iter().map(|s| s.persisted_hits).sum::<u64>()
        );
        prop_assert_eq!(merged.misses, per_shard.iter().map(|s| s.misses).sum::<u64>());
        prop_assert_eq!(merged.entries, per_shard.iter().map(|s| s.entries).sum::<usize>());
    }
}
