//! The `portfolio` group: engine strategies on a deep-inductive
//! invariant.
//!
//! The workload is the `deepcnt` generator's headline candidate — a
//! wrap-at-limit counter whose unreachable top band sits deeper than
//! any k the BMC + k-induction schedule tries, so the bounded engine
//! burns its full depth budget and still answers `Undetermined` while
//! IC3/PDR closes the proof from a handful of learned clauses:
//!
//! - `bounded_exhausts_deepcnt` — the bounded schedule's full
//!   walk to `Undetermined` (the cost the portfolio pays on one arm).
//! - `pdr_proves_deepcnt` — the PDR engine alone.
//! - `portfolio_proves_deepcnt` — both arms raced with first-answer
//!   cancellation, the configuration `--engine portfolio` ships.

use criterion::{criterion_group, criterion_main, Criterion};
use fv_core::{prove_with_stats, ProveConfig, ProveEngine, ProveResult};
use fveval_gen::{bind_scenario, GenParams};
use std::hint::black_box;
use std::time::Duration;

fn engine_cfg(engine: ProveEngine) -> ProveConfig {
    ProveConfig {
        engine,
        ..ProveConfig::default()
    }
}

fn bench_portfolio(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio");
    g.sample_size(10).measurement_time(Duration::from_secs(10));

    let scenario = fveval_gen::generator("deepcnt")
        .expect("deepcnt registered")
        .generate(&GenParams::default());
    let bound = bind_scenario(&scenario).expect("deepcnt binds");
    let headline = scenario
        .candidates
        .iter()
        .find(|cand| cand.name == "top_band_unreachable")
        .expect("headline candidate");
    let assertion = sv_parser::parse_assertion_str(&headline.sva).expect("headline parses");

    // Sanity: this is genuinely the bounded engine's blind spot, and
    // both reachability-aware configurations close it.
    let run = |engine| {
        prove_with_stats(
            &bound.netlist,
            &assertion,
            &bound.consts,
            engine_cfg(engine),
        )
        .unwrap()
        .0
    };
    assert_eq!(run(ProveEngine::Bounded), ProveResult::Undetermined);
    assert!(run(ProveEngine::Pdr).is_proven());
    assert!(run(ProveEngine::Portfolio).is_proven());

    for (name, engine) in [
        ("bounded_exhausts_deepcnt", ProveEngine::Bounded),
        ("pdr_proves_deepcnt", ProveEngine::Pdr),
        ("portfolio_proves_deepcnt", ProveEngine::Portfolio),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(run(engine))));
    }

    g.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
