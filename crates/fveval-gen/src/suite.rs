//! Suite-level generation: deterministic parameter sweeps across the
//! registered families, and the on-disk export the `fveval gen` CLI
//! writes.

use crate::{families, GenParams, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Configuration of one suite generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Families to generate (registry keys); empty means *all*.
    pub families: Vec<String>,
    /// Scenarios generated per family.
    pub per_family: usize,
    /// Master seed; the whole suite is byte-identical under it.
    pub seed: u64,
    /// Pins every scenario's `depth` instead of sweeping it.
    pub depth: Option<u32>,
    /// Pins every scenario's `width` instead of sweeping it.
    pub width: Option<u32>,
    /// OP-Tree mutants derived per scenario (see
    /// [`crate::derive_mutants`]); `0` — the default — leaves every
    /// scenario exactly as its family authored it, keeping historical
    /// suite output byte-identical.
    pub mutations: usize,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            families: Vec::new(),
            per_family: 4,
            seed: 0x9E4,
            depth: None,
            width: None,
            mutations: 0,
        }
    }
}

/// A generated suite: scenarios across families, in registry order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suite {
    /// The configuration the suite was generated from.
    pub config: SuiteConfig,
    /// The scenarios, grouped by family in registry order.
    pub scenarios: Vec<Scenario>,
}

impl Suite {
    /// Total candidate count across scenarios.
    pub fn candidate_count(&self) -> usize {
        self.scenarios.iter().map(|s| s.candidates.len()).sum()
    }
}

/// Generates a suite: `per_family` scenarios for each requested family,
/// with depth/width swept deterministically from the master seed
/// (unless pinned).
///
/// Unknown family names are ignored; use [`families::generator`] to
/// check a name first when that matters.
///
/// # Examples
///
/// ```
/// use fveval_gen::{generate_suite, SuiteConfig};
///
/// let suite = generate_suite(&SuiteConfig {
///     families: vec!["fifo".into(), "gray".into()],
///     per_family: 2,
///     seed: 7,
///     ..Default::default()
/// });
/// assert_eq!(suite.scenarios.len(), 4);
/// let again = generate_suite(&suite.config.clone());
/// assert_eq!(suite, again, "byte-identical under a fixed seed");
/// ```
pub fn generate_suite(config: &SuiteConfig) -> Suite {
    let width_options = [4u32, 8, 16, 32];
    let mut scenarios = Vec::new();
    for gen in families::generators() {
        // An empty family list means "every default family"; families
        // opting out of default suites (see
        // `ScenarioGenerator::in_default_suite`) must be named
        // explicitly.
        if config.families.is_empty() {
            if !gen.in_default_suite() {
                continue;
            }
        } else if !config.families.iter().any(|f| f == gen.family()) {
            continue;
        }
        // Per-family stream: adding a family never reshuffles another.
        let mut rng = StdRng::seed_from_u64(config.seed ^ crate::suite::family_tag(gen.family()));
        for _ in 0..config.per_family {
            let params = GenParams {
                depth: config.depth.unwrap_or_else(|| rng.gen_range(1..=8u32)),
                width: config
                    .width
                    .unwrap_or_else(|| width_options[rng.gen_range(0..width_options.len())]),
                seed: rng.gen(),
            };
            let mut scenario = gen.generate(&params);
            if config.mutations > 0 {
                crate::mutate::mutate_scenario(&mut scenario, config.mutations);
            }
            scenarios.push(scenario);
        }
    }
    Suite {
        config: config.clone(),
        scenarios,
    }
}

/// Writes `content` to `path` atomically: the bytes land in a `*.tmp`
/// sibling first and are renamed into place, so a concurrent reader
/// (or a killed process) never observes a torn file. Used for all
/// suite and `results/` emission.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    let tmp = path.with_file_name(format!("{name}.tmp"));
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// Stable per-family seed perturbation (FNV-1a over the name).
pub(crate) fn family_tag(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Writes a suite under `dir`: per scenario a `<id>.sv` (design +
/// testbench) and a `<id>.tasks.md` (candidates with verdicts and NL),
/// plus `manifest.{md,csv}` indexing everything. Returns the number of
/// files written. Every file is written to a `*.tmp` sibling and
/// atomically renamed, so concurrent runs never observe torn output.
///
/// # Errors
///
/// Propagates the first filesystem error.
pub fn write_suite(dir: &Path, suite: &Suite) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0usize;
    let mut manifest_md = String::from(
        "# Generated scenario suite\n\n\
         | Scenario | Family | Depth | Width | Provable | Falsifiable | Mutants |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let mut manifest_csv =
        String::from("scenario,family,depth,width,provable,falsifiable,mutants\n");
    for s in &suite.scenarios {
        let sv = dir.join(format!("{}.sv", s.id));
        write_atomic(&sv, &format!("{}\n{}\n", s.design_source, s.tb_source))?;
        written += 1;

        let mut tasks = format!(
            "# {}\n\nFamily `{}`; depth {}, width {}, seed {:#x}.\n\n",
            s.id, s.family, s.params.depth, s.params.width, s.params.seed
        );
        for c in &s.candidates {
            let origin = match c.mutation {
                Some(op) => format!(", mutant: {}", op.tag()),
                None => String::new(),
            };
            tasks.push_str(&format!(
                "## {} ({:?}{})\n\nNL: Create a SVA assertion that checks: {}\n\n```systemverilog\n{}\n```\n\n",
                c.name, c.verdict, origin, c.nl, c.sva
            ));
        }
        write_atomic(&dir.join(format!("{}.tasks.md", s.id)), &tasks)?;
        written += 1;

        let (p, fc) = (s.provable().count(), s.falsifiable().count());
        let mc = s.candidates.iter().filter(|c| c.mutation.is_some()).count();
        manifest_md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            s.id, s.family, s.params.depth, s.params.width, p, fc, mc
        ));
        manifest_csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            s.id, s.family, s.params.depth, s.params.width, p, fc, mc
        ));
    }
    write_atomic(&dir.join("manifest.md"), &manifest_md)?;
    write_atomic(&dir.join("manifest.csv"), &manifest_csv)?;
    Ok(written + 2)
}
