//! Cross-engine agreement: over a seeded sweep of every family, the
//! IC3/PDR engine must never *contradict* the bounded BMC + k-induction
//! schedule — on any candidate where both engines conclude, the verdict
//! kind is the same, and every PDR counterexample replays on the
//! reference simulator. PDR is allowed to conclude where the bounded
//! schedule is `Undetermined` (that is its purpose) and to return
//! `Undetermined` where the monitor shape is outside its fragment
//! (unbounded operators, pre-anchor `$past` reads).

use fv_core::{prove_with_stats, replay_design_cex, ProveConfig, ProveEngine, ProveResult};
use fveval_gen::{generators, validate_scenario, GenParams, GoldenVerdict};
use proptest::prelude::*;

fn engine_cfg(engine: ProveEngine) -> ProveConfig {
    ProveConfig {
        engine,
        ..ProveConfig::default()
    }
}

/// Proves one candidate under both engines and checks the agreement
/// contract; returns `true` when PDR reached a definite verdict.
fn check_candidate(
    scenario_id: &str,
    bound: &fveval_gen::BoundScenario,
    cand: &fveval_gen::Candidate,
) -> Result<bool, TestCaseError> {
    let assertion = sv_parser::parse_assertion_str(&cand.sva)
        .map_err(|e| TestCaseError::fail(format!("{scenario_id}/{}: {e}", cand.name)))?;
    let fail = |m: String| TestCaseError::fail(format!("{scenario_id}/{}: {m}", cand.name));
    let (bounded, _) = prove_with_stats(
        &bound.netlist,
        &assertion,
        &bound.consts,
        engine_cfg(ProveEngine::Bounded),
    )
    .map_err(|e| fail(format!("bounded: {e}")))?;
    let pdr_cfg = engine_cfg(ProveEngine::Pdr);
    let (pdr, _) = prove_with_stats(&bound.netlist, &assertion, &bound.consts, pdr_cfg)
        .map_err(|e| fail(format!("pdr: {e}")))?;
    match (&bounded, &pdr) {
        // Both concluded: the verdict kind must agree.
        (ProveResult::Proven { .. }, ProveResult::Proven { .. }) => {}
        (ProveResult::Falsified { .. }, ProveResult::Falsified { .. }) => {}
        // One-sided conclusions are fine in either direction (PDR
        // closes deep proofs; the bounded schedule handles monitor
        // shapes PDR refuses).
        (_, ProveResult::Undetermined) | (ProveResult::Undetermined, _) => {}
        (b, p) => {
            return Err(fail(format!(
                "engines disagree: bounded {b:?} vs pdr {p:?}"
            )));
        }
    }
    // A PDR conclusion must also match the golden verdict, and its
    // counterexamples must replay like any other engine's.
    match &pdr {
        ProveResult::Proven { .. } => {
            prop_assert_eq!(
                cand.verdict,
                GoldenVerdict::Provable,
                "{}/{}: PDR proved a falsifiable candidate",
                scenario_id,
                cand.name
            );
        }
        ProveResult::Falsified { cex } => {
            prop_assert_eq!(
                cand.verdict,
                GoldenVerdict::Falsifiable,
                "{}/{}: PDR falsified a provable candidate",
                scenario_id,
                cand.name
            );
            let ok = replay_design_cex(&bound.netlist, &assertion, &bound.consts, pdr_cfg, cex)
                .map_err(|e| fail(format!("replay: {e:?}")))?;
            prop_assert!(ok, "{}/{}: PDR cex does not replay", scenario_id, cand.name);
        }
        ProveResult::Undetermined => {}
    }
    Ok(!matches!(pdr, ProveResult::Undetermined))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sweeps `(family, seed, depth, width)` and runs every candidate
    /// through both engines.
    #[test]
    fn engines_agree_across_families(
        family_pick in 0usize..usize::MAX,
        seed in 0u64..u64::MAX,
        depth in 1u32..=8,
        width in 2u32..=16,
    ) {
        let gens = generators();
        let scenario = gens[family_pick % gens.len()].generate(&GenParams { depth, width, seed });
        let bound = fveval_gen::bind_scenario(&scenario).map_err(TestCaseError::fail)?;
        let mut pdr_concluded = 0usize;
        for cand in &scenario.candidates {
            if check_candidate(&scenario.id, &bound, cand)? {
                pdr_concluded += 1;
            }
        }
        // Every family carries at least one candidate in PDR's
        // fragment (a plain safety invariant), so a sweep case where
        // PDR concluded nothing would mean the engine is broken.
        prop_assert!(
            pdr_concluded >= 1,
            "{}: PDR concluded none of {} candidates",
            scenario.id,
            scenario.candidates.len()
        );
    }
}

#[test]
fn deepcnt_needs_pdr_and_portfolio_confirms_goldens() {
    // The deep family's headline invariant: bounded gives up, PDR
    // proves — through the public one-candidate path...
    let scenario = fveval_gen::generator("deepcnt")
        .expect("registered")
        .generate(&GenParams::default());
    let bound = fveval_gen::bind_scenario(&scenario).unwrap();
    let headline = scenario
        .candidates
        .iter()
        .find(|c| c.name == "top_band_unreachable")
        .expect("headline candidate");
    let assertion = sv_parser::parse_assertion_str(&headline.sva).unwrap();
    let (bounded, _) = prove_with_stats(
        &bound.netlist,
        &assertion,
        &bound.consts,
        engine_cfg(ProveEngine::Bounded),
    )
    .unwrap();
    assert_eq!(
        bounded,
        ProveResult::Undetermined,
        "the headline invariant must be out of the bounded schedule's reach"
    );
    let (pdr, stats) = prove_with_stats(
        &bound.netlist,
        &assertion,
        &bound.consts,
        engine_cfg(ProveEngine::Pdr),
    )
    .unwrap();
    assert!(pdr.is_proven(), "got {pdr:?}");
    assert!(stats.pdr_clauses_learned >= 1, "{stats:?}");

    // ...and through the whole-scenario portfolio gate: every golden
    // verdict confirms, with the deep proof attributed to PDR.
    let report = validate_scenario(&scenario, engine_cfg(ProveEngine::Portfolio)).unwrap();
    assert!(report.is_clean(), "{:?}", report.problems);
    assert_eq!(report.confirmed as usize, scenario.candidates.len());
    assert!(report.stats.pdr_wins >= 1, "{:?}", report.stats);
    assert!(report.stats.bounded_wins >= 1, "{:?}", report.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mutated goldens keep the cross-engine contract: every OP-Tree
    /// mutant derived from a family's provable candidates must be
    /// falsifiable under *both* engines' rules — the bounded schedule
    /// confirmed it at derivation time, and PDR, where it concludes,
    /// must also falsify it with a replaying counterexample, never
    /// prove it.
    #[test]
    fn engines_agree_on_mutated_goldens(
        family_pick in 0usize..usize::MAX,
        seed in 0u64..2000,
        op_idx in 0usize..fveval_gen::MutationOp::ALL.len(),
    ) {
        let op = fveval_gen::MutationOp::ALL[op_idx];
        let gens = generators();
        let scenario = gens[family_pick % gens.len()].generate(&GenParams {
            depth: 4,
            width: 8,
            seed,
        });
        let mutants = fveval_gen::derive_mutants_with_ops(&scenario, 4, &[op]);
        if mutants.is_empty() {
            // Not every (family, op) pair has an eligible site; the
            // round-robin sweep in `mutation.rs` covers yield.
            return Ok(());
        }
        let bound = fveval_gen::bind_scenario(&scenario).map_err(TestCaseError::fail)?;
        for mutant in &mutants {
            prop_assert_eq!(mutant.verdict, GoldenVerdict::Falsifiable);
            check_candidate(&scenario.id, &bound, mutant)?;
        }
    }
}
