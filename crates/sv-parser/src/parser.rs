//! Token cursor and the Pratt expression parser.

use crate::lexer::{Kw, Punct, Spanned, Tok};
use crate::ParseError;
use sv_ast::{BinaryOp, Expr, Literal, SysFunc, UnaryOp};

/// A cursor over the token stream with single-token lookahead and
/// position save/restore (used by the property parser for the
/// sequence-vs-property parenthesis ambiguity).
#[derive(Debug)]
pub struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    /// Wraps a token stream (must end with `Tok::Eof`).
    pub fn new(toks: Vec<Spanned>) -> Cursor {
        Cursor { toks, pos: 0 }
    }

    /// Current token.
    pub fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    /// Token `n` ahead of the current one.
    pub fn peek_n(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    /// Consumes and returns the current token.
    pub fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Current position, for backtracking.
    pub fn save(&self) -> usize {
        self.pos
    }

    /// Restores a saved position.
    pub fn restore(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// `true` at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    /// Builds an error at the current token.
    pub fn err(&self, msg: impl Into<String>) -> ParseError {
        let s = &self.toks[self.pos.min(self.toks.len() - 1)];
        ParseError::new(s.line, s.col, msg)
    }

    /// `true` and consumes if the current token is `p`.
    pub fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `true` and consumes if the current token is keyword `k`.
    pub fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == &Tok::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `true` if the current token is punct `p` (no consume).
    pub fn at_punct(&self, p: Punct) -> bool {
        self.peek() == &Tok::Punct(p)
    }

    /// `true` if the current token is keyword `k` (no consume).
    pub fn at_kw(&self, k: Kw) -> bool {
        self.peek() == &Tok::Keyword(k)
    }

    /// Consumes `p` or errors.
    pub fn expect_punct(&mut self, p: Punct, what: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Consumes keyword `k` or errors.
    pub fn expect_kw(&mut self, k: Kw, what: &str) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Consumes an identifier or errors.
    pub fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Errors unless all input was consumed.
    pub fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }
}

fn binop_of(p: Punct) -> Option<BinaryOp> {
    Some(match p {
        Punct::AmpAmp => BinaryOp::LogAnd,
        Punct::PipePipe => BinaryOp::LogOr,
        Punct::Amp => BinaryOp::BitAnd,
        Punct::Pipe => BinaryOp::BitOr,
        Punct::Caret => BinaryOp::BitXor,
        Punct::TildeCaret => BinaryOp::BitXnor,
        Punct::EqEq => BinaryOp::Eq,
        Punct::NotEq => BinaryOp::Neq,
        Punct::CaseEq => BinaryOp::CaseEq,
        Punct::CaseNeq => BinaryOp::CaseNeq,
        Punct::Lt => BinaryOp::Lt,
        Punct::Le => BinaryOp::Le,
        Punct::Gt => BinaryOp::Gt,
        Punct::Ge => BinaryOp::Ge,
        Punct::Plus => BinaryOp::Add,
        Punct::Minus => BinaryOp::Sub,
        Punct::Star => BinaryOp::Mul,
        Punct::Slash => BinaryOp::Div,
        Punct::Percent => BinaryOp::Mod,
        Punct::Shl => BinaryOp::Shl,
        Punct::Shr => BinaryOp::Shr,
        Punct::AShl => BinaryOp::AShl,
        Punct::AShr => BinaryOp::AShr,
        _ => return None,
    })
}

/// Binding strength table; must mirror `sv_ast::printer::precedence`.
fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 11,
        BinaryOp::Add | BinaryOp::Sub => 10,
        BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr => 9,
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 8,
        BinaryOp::Eq | BinaryOp::Neq | BinaryOp::CaseEq | BinaryOp::CaseNeq => 7,
        BinaryOp::BitAnd => 6,
        BinaryOp::BitXor | BinaryOp::BitXnor => 5,
        BinaryOp::BitOr => 4,
        BinaryOp::LogAnd => 3,
        BinaryOp::LogOr => 2,
    }
}

fn unary_of(t: &Tok) -> Option<UnaryOp> {
    match t {
        Tok::Punct(Punct::Bang) => Some(UnaryOp::LogNot),
        Tok::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
        Tok::Punct(Punct::Minus) => Some(UnaryOp::Neg),
        Tok::Punct(Punct::Plus) => Some(UnaryOp::Pos),
        Tok::Punct(Punct::Amp) => Some(UnaryOp::RedAnd),
        Tok::Punct(Punct::Pipe) => Some(UnaryOp::RedOr),
        Tok::Punct(Punct::Caret) => Some(UnaryOp::RedXor),
        Tok::Punct(Punct::TildeAmp) => Some(UnaryOp::RedNand),
        Tok::Punct(Punct::TildePipe) => Some(UnaryOp::RedNor),
        Tok::Punct(Punct::TildeCaret) => Some(UnaryOp::RedXnor),
        _ => None,
    }
}

/// Parses an expression at the lowest precedence (including `?:`).
pub fn parse_expr(cur: &mut Cursor) -> Result<Expr, ParseError> {
    let cond = parse_bin_expr(cur, 2)?;
    if cur.eat_punct(Punct::Question) {
        let t = parse_expr(cur)?;
        cur.expect_punct(Punct::Colon, "':' of conditional")?;
        let e = parse_expr(cur)?;
        return Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(e)));
    }
    Ok(cond)
}

#[allow(clippy::while_let_loop)] // the loop head mixes peek and guard logic
fn parse_bin_expr(cur: &mut Cursor, min_prec: u8) -> Result<Expr, ParseError> {
    let mut lhs = parse_unary(cur)?;
    loop {
        let op = match cur.peek() {
            Tok::Punct(p) => match binop_of(*p) {
                Some(op) if precedence(op) >= min_prec => op,
                _ => break,
            },
            _ => break,
        };
        cur.bump();
        let rhs = parse_bin_expr(cur, precedence(op) + 1)?;
        lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_unary(cur: &mut Cursor) -> Result<Expr, ParseError> {
    if let Some(op) = unary_of(cur.peek()) {
        cur.bump();
        let inner = parse_unary(cur)?;
        return Ok(Expr::Unary(op, Box::new(inner)));
    }
    parse_postfix(cur)
}

fn parse_postfix(cur: &mut Cursor) -> Result<Expr, ParseError> {
    let mut e = parse_primary(cur)?;
    loop {
        // `[` starts an index/slice unless it is a repetition `[*`.
        if cur.at_punct(Punct::LBracket) && cur.peek_n(1) != &Tok::Punct(Punct::Star) {
            cur.bump();
            let first = parse_expr(cur)?;
            if cur.eat_punct(Punct::Colon) {
                let lo = parse_expr(cur)?;
                cur.expect_punct(Punct::RBracket, "']' of part-select")?;
                e = Expr::Slice(Box::new(e), Box::new(first), Box::new(lo));
            } else {
                cur.expect_punct(Punct::RBracket, "']' of bit-select")?;
                e = Expr::Index(Box::new(e), Box::new(first));
            }
        } else {
            break;
        }
    }
    Ok(e)
}

fn parse_primary(cur: &mut Cursor) -> Result<Expr, ParseError> {
    match cur.peek().clone() {
        Tok::Ident(s) => {
            cur.bump();
            Ok(Expr::Ident(s))
        }
        Tok::Number { width, base, value } => {
            cur.bump();
            Ok(Expr::Literal(Literal::Int { width, value, base }))
        }
        Tok::Fill(b) => {
            cur.bump();
            Ok(Expr::Literal(Literal::Fill(b)))
        }
        Tok::SysIdent(name) => {
            cur.bump();
            let f = SysFunc::from_name(&name)
                .ok_or_else(|| cur.err(format!("unknown system function '${name}'")))?;
            cur.expect_punct(Punct::LParen, "'(' after system function")?;
            let mut args = Vec::new();
            if !cur.at_punct(Punct::RParen) {
                loop {
                    args.push(parse_expr(cur)?);
                    if !cur.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            cur.expect_punct(Punct::RParen, "')' of system function call")?;
            Ok(Expr::SysCall(f, args))
        }
        Tok::Punct(Punct::LParen) => {
            cur.bump();
            let e = parse_expr(cur)?;
            cur.expect_punct(Punct::RParen, "')'")?;
            Ok(e)
        }
        Tok::Punct(Punct::LBrace) => {
            cur.bump();
            let first = parse_expr(cur)?;
            // Replication `{n{expr}}`.
            if cur.at_punct(Punct::LBrace) {
                cur.bump();
                let inner = parse_expr(cur)?;
                cur.expect_punct(Punct::RBrace, "'}' of replication body")?;
                cur.expect_punct(Punct::RBrace, "'}' of replication")?;
                return Ok(Expr::Replicate(Box::new(first), Box::new(inner)));
            }
            let mut items = vec![first];
            while cur.eat_punct(Punct::Comma) {
                items.push(parse_expr(cur)?);
            }
            cur.expect_punct(Punct::RBrace, "'}' of concatenation")?;
            Ok(Expr::Concat(items))
        }
        other => Err(cur.err(format!("expected expression, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_expr_str;
    use sv_ast::{print_expr, BinaryOp, Expr, SysFunc, UnaryOp};

    fn rt(src: &str) -> String {
        print_expr(&parse_expr_str(src).unwrap())
    }

    #[test]
    fn precedence_shapes() {
        // a | b & c parses as a | (b & c)
        let e = parse_expr_str("a | b & c").unwrap();
        match e {
            Expr::Binary(BinaryOp::BitOr, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinaryOp::BitAnd, ..)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn round_trip_is_fixpoint() {
        for src in [
            "a && !b",
            "(a | b) & c",
            "a == 2'b10",
            "sig_G !== 1'b1",
            "$countones(sig_H) % 2 == 1",
            "!$onehot0({hold, busy, cont_gnt}) !== 1'b1",
            "fifo_array[fifo_rd_ptr]",
            "data[i] <<< 7",
            "x[3:0]",
            "sel ? a + 1 : b - 1",
            "{2{a}}",
            "^sig_G === 1'b1 && &sig_B",
            "|tb_req && !busy",
            "(in_C <= 'd1) != in_A",
        ] {
            let once = rt(src);
            assert_eq!(rt(&once), once, "fixpoint for {src}");
        }
    }

    #[test]
    fn reduction_vs_binary_ambiguity() {
        // `a & &b` : binary-and of a with reduction-and of b.
        let e = parse_expr_str("a & &b").unwrap();
        match e {
            Expr::Binary(BinaryOp::BitAnd, _, rhs) => {
                assert!(matches!(*rhs, Expr::Unary(UnaryOp::RedAnd, _)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn sysfunc_args() {
        let e = parse_expr_str("$countones(a ^ b)").unwrap();
        assert!(matches!(e, Expr::SysCall(SysFunc::Countones, _)));
        assert!(parse_expr_str("$nonexistent(a)").is_err());
    }

    #[test]
    fn ternary_nests_right() {
        let e = parse_expr_str("a ? b : c ? d : e").unwrap();
        match e {
            Expr::Ternary(_, _, els) => assert!(matches!(*els, Expr::Ternary(..))),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn index_chain() {
        assert_eq!(rt("mem[i][j]"), "mem[i][j]");
        assert_eq!(rt("data[DEPTH:0]"), "data[DEPTH:0]");
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_expr_str("a b").is_err());
        assert!(parse_expr_str("a +").is_err());
        assert!(parse_expr_str("(a").is_err());
    }
}
