//! Paper-style result tables with markdown and CSV rendering.

use std::fmt::Write as _;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum TableCell {
    /// Free text (model names, row labels).
    Text(String),
    /// A metric value rendered to three decimals; the per-column best
    /// is bolded like the paper's tables.
    Value(f64),
}

impl From<&str> for TableCell {
    fn from(s: &str) -> TableCell {
        TableCell::Text(s.to_string())
    }
}

impl From<String> for TableCell {
    fn from(s: String) -> TableCell {
        TableCell::Text(s)
    }
}

impl From<f64> for TableCell {
    fn from(v: f64) -> TableCell {
        TableCell::Value(v)
    }
}

/// A result table (title, column headers, rows).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table title (e.g. `Table 1: NL2SVA-Human`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<TableCell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row<I: IntoIterator<Item = TableCell>>(&mut self, row: I) {
        self.rows.push(row.into_iter().collect());
    }

    /// Indices of the best (maximum) value per numeric column.
    fn best_per_column(&self) -> Vec<Option<usize>> {
        let ncols = self.headers.len();
        (0..ncols)
            .map(|c| {
                let mut best: Option<(usize, f64)> = None;
                for (r, row) in self.rows.iter().enumerate() {
                    if let Some(TableCell::Value(v)) = row.get(c) {
                        if best.is_none_or(|(_, bv)| *v > bv) {
                            best = Some((r, *v));
                        }
                    }
                }
                best.map(|(r, _)| r)
            })
            .collect()
    }

    /// Renders GitHub-flavoured markdown with the per-column best bolded.
    pub fn to_markdown(&self) -> String {
        let best = self.best_per_column();
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for (r, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| match cell {
                    TableCell::Text(s) => s.clone(),
                    TableCell::Value(v) => {
                        if best.get(c).copied().flatten() == Some(r) {
                            format!("**{v:.3}**")
                        } else {
                            format!("{v:.3}")
                        }
                    }
                })
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders CSV (no highlighting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|cell| match cell {
                    TableCell::Text(s) => s.clone(),
                    TableCell::Value(v) => format!("{v:.4}"),
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Table X", &["Model", "Syntax", "Func."]);
        t.push_row(["gpt-4o".into(), 0.911.into(), 0.456.into()]);
        t.push_row(["llama-3-8b".into(), 0.747.into(), 0.063.into()]);
        t
    }

    #[test]
    fn markdown_bolds_best() {
        let md = sample_table().to_markdown();
        assert!(md.contains("**0.911**"));
        assert!(md.contains("**0.456**"));
        assert!(md.contains("0.747"));
        assert!(!md.contains("**0.747**"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "Model,Syntax,Func.");
        assert!(lines[1].starts_with("gpt-4o,0.9110"));
    }

    #[test]
    fn empty_numeric_column_is_fine() {
        let mut t = Table::new("t", &["A"]);
        t.push_row(["only-text".into()]);
        assert!(t.to_markdown().contains("only-text"));
    }
}
