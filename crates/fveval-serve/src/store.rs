//! The persistent, content-addressed verdict store.
//!
//! A [`VerdictStore`] is a directory of append-only JSON-lines
//! *segments* (`seg-<NNNNNN>.jsonl`), each line one
//! [`VerdictRecord`] keyed by the engine's `(model, task-id,
//! content-digest, cfg, sample)` cache key. The format is designed
//! around three guarantees:
//!
//! - **atomic writes**: a flush writes a complete new segment to a
//!   process-unique hidden `*.tmp` file and publishes it with a
//!   no-clobber link, so a concurrent reader (or a killed writer)
//!   never observes a half-written segment, and two processes sharing
//!   one cache directory never overwrite each other's segments;
//! - **crash-safe recovery**: loading tolerates a torn tail — any
//!   undecodable line is skipped and counted, never fatal — so a store
//!   survives `kill -9` mid-write;
//! - **deterministic compaction**: [`VerdictStore::compact`] rewrites
//!   every live entry (deduplicated by key, later segments win) into a
//!   single segment sorted by key, then deletes the old segments.
//!
//! See `docs/SERVICE.md` for the on-disk format in full.

use crate::json::{parse, Json};
use fveval_core::{SampleEval, VerdictRecord};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The store's in-memory key: the engine cache key with the digest in
/// its portable form.
type StoreKey = (String, String, u64, String, u32);

fn key_of(record: &VerdictRecord) -> StoreKey {
    (
        record.model.clone(),
        record.task_id.clone(),
        record.digest,
        record.cfg.clone(),
        record.sample,
    )
}

/// A persistent verdict store rooted at one directory.
#[derive(Debug)]
pub struct VerdictStore {
    dir: PathBuf,
    entries: HashMap<StoreKey, SampleEval>,
    segments: Vec<PathBuf>,
    next_segment: u64,
    torn_lines: usize,
}

impl VerdictStore {
    /// Opens (creating if needed) the store under `dir` and loads every
    /// segment, skipping torn lines.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created or listed, or a segment cannot be read. Undecodable
    /// *lines* are recovery, not errors — see
    /// [`VerdictStore::torn_lines`].
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<VerdictStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".jsonl"))
            })
            .collect();
        // Zero-padded names sort correctly as strings; replay segments
        // in creation order so later writes win.
        segments.sort();
        let mut store = VerdictStore {
            dir,
            entries: HashMap::new(),
            next_segment: segments
                .iter()
                .filter_map(|p| segment_index(p))
                .max()
                .map_or(0, |n| n + 1),
            segments: segments.clone(),
            torn_lines: 0,
        };
        for segment in &segments {
            // Bytes, not a String: a torn tail can end mid-UTF-8
            // sequence, which must count as one skipped line, not an
            // unreadable store.
            let bytes = std::fs::read(segment)?;
            for line in bytes.split(|&b| b == b'\n') {
                if line.is_empty() {
                    continue;
                }
                match std::str::from_utf8(line).ok().and_then(decode_record) {
                    Some(record) => {
                        store.entries.insert(key_of(&record), record.eval);
                    }
                    None => store.torn_lines += 1,
                }
            }
        }
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live (deduplicated) verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of on-disk segments (compaction folds these into one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Undecodable lines skipped during [`VerdictStore::open`] — torn
    /// tails from interrupted writes.
    pub fn torn_lines(&self) -> usize {
        self.torn_lines
    }

    /// Every live verdict, sorted by key (deterministic — feed this to
    /// [`fveval_core::EvalEngine::load_verdicts`]).
    pub fn records(&self) -> Vec<VerdictRecord> {
        let mut keys: Vec<&StoreKey> = self.entries.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|key| VerdictRecord {
                model: key.0.clone(),
                task_id: key.1.clone(),
                digest: key.2,
                cfg: key.3.clone(),
                sample: key.4,
                eval: self.entries[key],
            })
            .collect()
    }

    /// Appends a batch of verdicts as one new segment, staged in a
    /// process-unique `*.tmp` file and atomically published under the
    /// next free segment name. Empty batches are a no-op.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; on failure the store's
    /// on-disk state is unchanged (the tmp file may remain and is
    /// ignored by [`VerdictStore::open`]).
    pub fn append(&mut self, records: &[VerdictRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let path = self.write_segment(records)?;
        self.segments.push(path);
        for record in records {
            self.entries.insert(key_of(record), record.eval);
        }
        Ok(())
    }

    /// Re-reads the directory, replaying every on-disk segment in name
    /// order — picking up segments published by *other* handles or
    /// processes since this one opened. The next-segment index only
    /// moves forward, so a refreshed handle never reuses a name it
    /// already advanced past.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from re-reading the directory.
    pub fn refresh(&mut self) -> std::io::Result<()> {
        let fresh = VerdictStore::open(&self.dir)?;
        self.next_segment = self.next_segment.max(fresh.next_segment);
        self.entries = fresh.entries;
        self.segments = fresh.segments;
        self.torn_lines = fresh.torn_lines;
        Ok(())
    }

    /// Rewrites every live entry into a single sorted segment and
    /// deletes the old segments. Idempotent; a store compacted twice
    /// is byte-identical to one compacted once.
    ///
    /// The entry set is [`VerdictStore::refresh`]ed from disk first:
    /// the compacted segment gets the highest index and would shadow
    /// anything older on replay, so compacting a stale in-memory view
    /// would otherwise resurrect old values over segments another
    /// handle published concurrently.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error. The new segment is published
    /// *before* old segments are removed, so an interrupted
    /// compaction only leaves redundant (shadowed) segments behind,
    /// never data loss.
    pub fn compact(&mut self) -> std::io::Result<()> {
        self.refresh()?;
        let live = self.records();
        let old = std::mem::take(&mut self.segments);
        if live.is_empty() {
            self.segments = old;
            return Ok(());
        }
        let path = self.write_segment(&live)?;
        for segment in &old {
            // Removal failures are non-fatal: the shadowing order
            // (segments replay in name order, and the new segment has
            // the highest index) keeps the store correct.
            let _ = std::fs::remove_file(segment);
        }
        self.segments = vec![path];
        Ok(())
    }

    /// Writes `records` to a process-unique hidden tmp file, then
    /// atomically publishes it under the next free segment name with a
    /// no-clobber link. Two processes sharing one cache directory can
    /// therefore never overwrite each other's segments: a name
    /// collision just advances to the next index and retries.
    fn write_segment(&mut self, records: &[VerdictRecord]) -> std::io::Result<PathBuf> {
        let tmp = self.dir.join(format!(
            ".seg-{}-{}.tmp",
            std::process::id(),
            self.next_segment
        ));
        let mut body = String::new();
        for record in records {
            body.push_str(&encode_record(record).encode());
            body.push('\n');
        }
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_all()?;
        }
        loop {
            let path = self.dir.join(format!("seg-{:06}.jsonl", self.next_segment));
            self.next_segment += 1;
            // hard_link refuses to replace an existing target, unlike
            // rename — that refusal is the no-clobber guarantee.
            match std::fs::hard_link(&tmp, &path) {
                Ok(()) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Ok(path);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                    // Filesystem without hard links: fall back to a
                    // plain atomic rename (single-writer semantics).
                    std::fs::rename(&tmp, &path)?;
                    return Ok(path);
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e);
                }
            }
        }
    }
}

fn segment_index(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("seg-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

/// Encodes one verdict as its on-disk JSON object. The digest is hex
/// text because JSON numbers cannot hold all 64 bits exactly.
pub fn encode_record(record: &VerdictRecord) -> Json {
    Json::obj([
        ("model", record.model.as_str().into()),
        ("task", record.task_id.as_str().into()),
        ("digest", format!("{:016x}", record.digest).into()),
        ("cfg", record.cfg.as_str().into()),
        ("sample", record.sample.into()),
        ("syntax", record.eval.syntax.into()),
        ("func", record.eval.func.into()),
        ("partial", record.eval.partial.into()),
        ("bleu", record.eval.bleu.into()),
    ])
}

/// Decodes one store line; `None` means the line is torn or malformed
/// and should be skipped during recovery.
pub fn decode_record(line: &str) -> Option<VerdictRecord> {
    let value = parse(line).ok()?;
    Some(VerdictRecord {
        model: value.get("model")?.as_str()?.to_string(),
        task_id: value.get("task")?.as_str()?.to_string(),
        digest: u64::from_str_radix(value.get("digest")?.as_str()?, 16).ok()?,
        cfg: value.get("cfg")?.as_str()?.to_string(),
        sample: u32::try_from(value.get("sample")?.as_u64()?).ok()?,
        eval: SampleEval {
            syntax: value.get("syntax")?.as_bool()?,
            func: value.get("func")?.as_bool()?,
            partial: value.get("partial")?.as_bool()?,
            bleu: value.get("bleu")?.as_f64()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn record(i: u32, bleu: f64) -> VerdictRecord {
        VerdictRecord {
            model: format!("model-{}", i % 3),
            task_id: format!("task_{i:04}"),
            digest: 0xDEAD_BEEF_0000_0000 | u64::from(i),
            cfg: "t0000000000000000_n0_s0".to_string(),
            sample: i % 5,
            eval: SampleEval {
                syntax: i.is_multiple_of(2),
                func: i.is_multiple_of(3),
                partial: i.is_multiple_of(2),
                bleu,
            },
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let tmp = TempDir::new("store-roundtrip");
        let records: Vec<VerdictRecord> = (0..20).map(|i| record(i, f64::from(i) / 7.0)).collect();
        let mut store = VerdictStore::open(tmp.path()).unwrap();
        store.append(&records[..10]).unwrap();
        store.append(&records[10..]).unwrap();
        assert_eq!(store.segment_count(), 2);
        let reopened = VerdictStore::open(tmp.path()).unwrap();
        assert_eq!(reopened.len(), 20);
        assert_eq!(reopened.torn_lines(), 0);
        assert_eq!(reopened.records(), store.records());
        // BLEU survives bit-for-bit.
        let back = reopened.records();
        for r in &records {
            let found = back
                .iter()
                .find(|b| b.task_id == r.task_id && b.sample == r.sample);
            assert_eq!(found.unwrap().eval.bleu.to_bits(), r.eval.bleu.to_bits());
        }
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let tmp = TempDir::new("store-torn");
        let mut store = VerdictStore::open(tmp.path()).unwrap();
        let records: Vec<VerdictRecord> = (0..5).map(|i| record(i, 0.25)).collect();
        store.append(&records).unwrap();
        // Simulate a crash mid-write: truncate the segment in the
        // middle of its last line.
        let segment = store.segments[0].clone();
        let text = std::fs::read_to_string(&segment).unwrap();
        let cut = text.len() - 17;
        std::fs::write(&segment, &text[..cut]).unwrap();
        let recovered = VerdictStore::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 4, "intact lines survive");
        assert_eq!(recovered.torn_lines(), 1, "the torn tail is counted");
        // The recovered store keeps working: append + reopen is clean.
        let mut recovered = recovered;
        recovered.append(&records[4..]).unwrap();
        let healed = VerdictStore::open(tmp.path()).unwrap();
        assert_eq!(healed.len(), 5);
    }

    #[test]
    fn later_segments_win_and_compaction_dedups() {
        let tmp = TempDir::new("store-compact");
        let mut store = VerdictStore::open(tmp.path()).unwrap();
        let old = record(1, 0.1);
        let mut new = record(1, 0.9);
        new.eval.func = !old.eval.func;
        store.append(&[old.clone(), record(2, 0.2)]).unwrap();
        store.append(&[new.clone(), record(3, 0.3)]).unwrap();
        assert_eq!(store.len(), 3, "same key deduplicates");
        store.compact().unwrap();
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.len(), 3);
        let reopened = VerdictStore::open(tmp.path()).unwrap();
        let kept = reopened
            .records()
            .into_iter()
            .find(|r| r.task_id == new.task_id && r.sample == new.sample)
            .unwrap();
        assert_eq!(kept.eval, new.eval, "the later write won");
        // Compaction is deterministic: compacting again changes nothing.
        let before = std::fs::read_to_string(&reopened.segments[0]).unwrap();
        let mut again = reopened;
        again.compact().unwrap();
        let after = std::fs::read_to_string(&again.segments[0]).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn concurrent_writers_never_clobber_each_other() {
        let tmp = TempDir::new("store-concurrent");
        // Two handles opened on the same directory at the same state —
        // what two concurrent CLI runs sharing a cache dir look like.
        // Both flush; the segment-name collision must resolve to two
        // distinct segments with both batches intact.
        let mut a = VerdictStore::open(tmp.path()).unwrap();
        let mut b = VerdictStore::open(tmp.path()).unwrap();
        a.append(&[record(1, 0.1)]).unwrap();
        b.append(&[record(2, 0.2)]).unwrap();
        let merged = VerdictStore::open(tmp.path()).unwrap();
        assert_eq!(merged.len(), 2, "no batch was lost");
        assert_eq!(merged.segment_count(), 2);
        assert_eq!(merged.torn_lines(), 0);
    }

    #[test]
    fn compaction_on_a_stale_handle_cannot_shadow_newer_segments() {
        let tmp = TempDir::new("store-stale-compact");
        let key1_old = record(1, 0.1);
        let mut key1_new = record(1, 0.9);
        key1_new.eval.func = !key1_old.eval.func;
        // Handle A sees only the old value for key 1.
        let mut a = VerdictStore::open(tmp.path()).unwrap();
        a.append(std::slice::from_ref(&key1_old)).unwrap();
        // Handle B (a concurrent process) publishes a newer value.
        let mut b = VerdictStore::open(tmp.path()).unwrap();
        b.append(&[key1_new.clone(), record(2, 0.2)]).unwrap();
        // A compacts with its stale in-memory view. The compacted
        // segment has the highest index, so without the refresh
        // pre-pass the stale 0.1 would win replay over B's 0.9.
        a.compact().unwrap();
        let merged = VerdictStore::open(tmp.path()).unwrap();
        let kept = merged
            .records()
            .into_iter()
            .find(|r| r.task_id == key1_new.task_id && r.sample == key1_new.sample)
            .unwrap();
        assert_eq!(kept.eval, key1_new.eval, "the concurrent write survives");
        assert_eq!(merged.len(), 2, "no record lost");
    }

    #[test]
    fn threaded_flush_and_compact_preserve_every_verdict() {
        let tmp = TempDir::new("store-flush-compact");
        // The server's live-compaction shape: worker threads flush
        // batches through the shared mutex while a maintenance thread
        // compacts between them.
        let store = std::sync::Mutex::new(VerdictStore::open(tmp.path()).unwrap());
        let batches: Vec<Vec<VerdictRecord>> = (0..8)
            .map(|b| {
                (0..16)
                    .map(|i| record(b * 16 + i, f64::from(b) / 8.0))
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for batch in &batches {
                    store.lock().unwrap().append(batch).unwrap();
                }
            });
            scope.spawn(|| {
                for _ in 0..12 {
                    store.lock().unwrap().compact().unwrap();
                    std::thread::yield_now();
                }
            });
        });
        let reopened = VerdictStore::open(tmp.path()).unwrap();
        assert_eq!(reopened.torn_lines(), 0);
        let keys: std::collections::HashSet<String> = reopened
            .records()
            .into_iter()
            .map(|r| format!("{}|{}|{}", r.model, r.task_id, r.sample))
            .collect();
        for batch in &batches {
            for r in batch {
                assert!(
                    keys.contains(&format!("{}|{}|{}", r.model, r.task_id, r.sample)),
                    "verdict {} survived flush+compact",
                    r.task_id
                );
            }
        }
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let tmp = TempDir::new("store-tmp");
        let mut store = VerdictStore::open(tmp.path()).unwrap();
        store.append(&[record(0, 0.5)]).unwrap();
        std::fs::write(tmp.path().join("seg-000099.jsonl.tmp"), "garbage").unwrap();
        let reopened = VerdictStore::open(tmp.path()).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.torn_lines(), 0);
    }
}
