//! The three FVEval datasets, plus loadable generated task sets.
//!
//! - [`human`] — NL2SVA-Human: 13 expert-style testbenches with 79
//!   (NL specification, reference SVA) pairs, mirroring the paper's
//!   Table 6 composition (FIFOs, arbiters, FSMs, counter, RAM).
//! - [`machine`] — NL2SVA-Machine: the synthetic generation pipeline
//!   (random SVA sampling → naturalization → critic with retry),
//!   producing 300 cases by default.
//! - [`design`] — Design2SVA: parameterized arithmetic-pipeline and FSM
//!   RTL generators with accompanying testbench headers and a sweep of
//!   96 instances per category.
//! - [`generated`] — open-ended scenario suites from the `fveval-gen`
//!   subsystem (FIFOs, arbiters, handshakes, gray counters, shift
//!   registers, CRC pipelines), converted into all three task shapes
//!   above. See `docs/TASK_AUTHORING.md` for adding families.
//!
//! Everything is deterministic under a seed, and every generated
//! artifact round-trips through the repository's own parser and
//! elaborator (tested).

#![deny(missing_docs)]

pub mod design;
pub mod generated;
pub mod human;
pub mod machine;

pub use design::{
    fsm_sweep, generate_fsm, generate_pipeline, pipeline_sweep, DesignCase, DesignKind, FsmParams,
    PipelineParams,
};
pub use generated::{generated_task_set, task_set_from_suite, GeneratedTaskSet};
// Re-exported so harness/engine callers configure generation without a
// direct `fveval-gen` dependency.
pub use fveval_gen::{GenParams, Scenario, Suite, SuiteConfig};
pub use human::{human_cases, signal_table_for, testbench, testbenches, HumanCase, Testbench};
pub use machine::{generate_machine_cases, machine_signal_table, MachineCase, MachineGenConfig};
