//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Just enough of the protocol for the service: one request per
//! connection (`Connection: close`), `Content-Length` bodies, no
//! chunked encoding, bounded header and body sizes. Both the server
//! and the [`crate::Client`] use these helpers, so the two ends can
//! never disagree about framing.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted header block.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted body.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request: method, path, and raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / ….
    pub method: String,
    /// The request target, e.g. `/v1/jobs/3`.
    pub path: String,
    /// The raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads the head (start line + headers) up to the blank line, then
/// any `Content-Length` body. Returns the start line, the lowercased
/// headers, and the body.
fn read_message(stream: &mut TcpStream) -> std::io::Result<(String, Vec<String>, Vec<u8>)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(invalid("header block too large"));
        }
        match stream.read(&mut byte)? {
            0 if head.is_empty() => {
                // A connection that closes without sending anything is
                // a liveness probe or acceptor wake-up, not an error —
                // give it a distinct kind so callers can stay quiet.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before any request",
                ));
            }
            0 => return Err(invalid("connection closed mid-header")),
            _ => head.push(byte[0]),
        }
    }
    let text = String::from_utf8(head).map_err(|_| invalid("non-UTF-8 header"))?;
    let mut lines = text.split("\r\n");
    let start = lines.next().unwrap_or_default().to_string();
    let headers: Vec<String> = lines
        .filter(|l| !l.is_empty())
        .map(|l| l.to_ascii_lowercase())
        .collect();
    let length = headers
        .iter()
        .find_map(|h| h.strip_prefix("content-length:"))
        .map(|v| v.trim().parse::<usize>())
        .transpose()
        .map_err(|_| invalid("bad content-length"))?
        .unwrap_or(0);
    if length > MAX_BODY {
        return Err(invalid("body too large"));
    }
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((start, headers, body))
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// Returns `InvalidData` on malformed framing and propagates transport
/// errors (including read timeouts).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let (start, _headers, body) = read_message(stream)?;
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| invalid("missing request path"))?;
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Writes one `application/json` response and flushes the stream.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one request (the client side of [`read_request`]).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\n\
         Host: fveval-serve\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response; returns `(status, body)`.
///
/// # Errors
///
/// Returns `InvalidData` on malformed framing and propagates transport
/// errors.
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let (start, _headers, body) = read_message(stream)?;
    let status = start
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let body = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body"))?;
    Ok((status, body))
}
