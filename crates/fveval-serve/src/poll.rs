//! Thin std-only readiness polling over `epoll` — the event substrate
//! of the sharded server.
//!
//! The workspace builds offline with no external crates, so instead of
//! `mio`/`libc` this module declares the three `epoll` entry points
//! itself (`std` already links the C library, the symbols are present
//! at link time — the same philosophy as `crates/shims/`). The surface
//! is the minimal readiness API the event loop needs:
//!
//! - [`Poller::register`] / [`Poller::rearm`] / [`Poller::deregister`]
//!   attach file descriptors with an [`Interest`] and a caller `u64`
//!   token;
//! - [`Poller::wait`] blocks (with a timeout) until at least one
//!   registered descriptor is ready, and reports the ready set as
//!   [`Event`]s.
//!
//! Level-triggered semantics are used throughout: a descriptor stays
//! ready until it is drained, so the loop never needs to worry about
//! missed edges — a stalled peer simply stops producing events without
//! blocking anyone else.

use std::io;
use std::os::fd::RawFd;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the descriptor is readable (or the peer closed).
    Read,
    /// Wake when the descriptor is writable.
    Write,
    /// Wake on either direction.
    ReadWrite,
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// Data can be read (or the read side saw EOF).
    pub readable: bool,
    /// The socket accepts writes.
    pub writable: bool,
    /// Error or hang-up: the connection is dead and should be dropped.
    pub closed: bool,
}

// The subset of <sys/epoll.h> the poller uses.
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`; packed on x86-64, where the kernel ABI has no
/// padding between the mask and the payload.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// A readiness poller over one `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a fresh `epoll` instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Returns the OS error if the kernel refuses the instance (fd
    /// exhaustion).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the documented error signal.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn mask(interest: Interest) -> u32 {
        // EPOLLRDHUP distinguishes "peer closed" from "no data yet"
        // without a read() probe.
        let base = EPOLLRDHUP;
        match interest {
            Interest::Read => base | EPOLLIN,
            Interest::Write => base | EPOLLOUT,
            Interest::ReadWrite => base | EPOLLIN | EPOLLOUT,
        }
    }

    fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: mask,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` with `interest`, reporting it as `token`.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. the fd is already registered).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Self::mask(interest), token)
    }

    /// Changes an already-registered descriptor's interest set.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. the fd was never registered).
    pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Self::mask(interest), token)
    }

    /// Stops watching `fd`. Harmless to call on an fd the kernel
    /// already dropped (closing an fd deregisters it implicitly).
    pub fn deregister(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until readiness or `timeout_ms`, appending the ready set
    /// to `out` (cleared first). Interrupted waits (`EINTR`) retry.
    ///
    /// # Errors
    ///
    /// Returns the OS error on an unrecoverable wait failure.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        const CAPACITY: usize = 64;
        let mut events = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            // SAFETY: the buffer is valid for CAPACITY entries and the
            // kernel writes at most `maxevents` of them.
            let rc =
                unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), CAPACITY as i32, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for event in &events[..n] {
            let bits = event.events;
            out.push(Event {
                token: event.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this poller and closed once.
        unsafe { close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_tracks_a_loopback_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 1, Interest::Read)
            .unwrap();

        // Nothing pending: the wait times out empty.
        let mut events = Vec::new();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty());

        // A connect makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 2, Interest::Read)
            .unwrap();

        // Client bytes make the accepted socket readable.
        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        let n = server_side.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Rearmed for writes, an idle socket is immediately writable.
        poller
            .rearm(server_side.as_raw_fd(), 2, Interest::Write)
            .unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // A dropped peer reports readable (EOF) readiness.
        poller
            .rearm(server_side.as_raw_fd(), 2, Interest::Read)
            .unwrap();
        drop(client);
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        poller.deregister(server_side.as_raw_fd());
    }
}
