//! Small statistics helpers for the figures: Pearson correlation
//! (Figure 6) and histograms (Figures 2–4).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 for degenerate inputs (length < 2 or zero variance).
///
/// # Examples
///
/// ```
/// use fveval_core::pearson;
/// let xs = [1.0, 2.0, 3.0];
/// assert!((pearson(&xs, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
/// assert!((pearson(&xs, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sample lengths must match");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// A binned histogram with an ASCII rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bin lower edges (uniform width).
    pub edges: Vec<f64>,
    /// Counts per bin.
    pub counts: Vec<usize>,
    /// Bin width.
    pub width: f64,
}

impl Histogram {
    /// Renders bars like the paper's distribution plots.
    pub fn render(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (edge, &count) in self.edges.iter().zip(&self.counts) {
            let bar = "#".repeat(count * 40 / max);
            out.push_str(&format!(
                "{:>8.1} - {:>8.1} | {:>4} | {bar}\n",
                edge,
                edge + self.width,
                count
            ));
        }
        out
    }
}

/// Bins values into `bins` uniform buckets over their range.
pub fn histogram(values: &[f64], bins: usize) -> Histogram {
    assert!(bins > 0, "at least one bin");
    if values.is_empty() {
        return Histogram {
            edges: vec![0.0; bins],
            counts: vec![0; bins],
            width: 1.0,
        };
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = (((v - lo) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    Histogram {
        edges: (0..bins).map(|i| lo + width * i as f64).collect(),
        counts,
        width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_uncorrelated_noise_is_small() {
        // Deterministic "noise" with no linear relation.
        let xs: Vec<f64> = (0..200).map(|i| f64::from(i % 17)).collect();
        let ys: Vec<f64> = (0..200).map(|i| f64::from((i * 7 + 3) % 13)).collect();
        assert!(pearson(&xs, &ys).abs() < 0.2);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn histogram_counts_everything() {
        let vals = [1.0, 2.0, 2.5, 9.0, 10.0];
        let h = histogram(&vals, 3);
        assert_eq!(h.counts.iter().sum::<usize>(), vals.len());
        assert_eq!(h.counts.len(), 3);
        assert!(!h.render().is_empty());
    }

    #[test]
    fn histogram_empty_input() {
        let h = histogram(&[], 4);
        assert_eq!(h.counts.iter().sum::<usize>(), 0);
    }
}
