//! OP-Tree mutation layer: near-miss *falsifiable* candidates derived
//! from provable ones.
//!
//! The FVRuleLearner line of work views an SVA assertion as an
//! operator tree (OP-Tree) and observes that the wrong assertions
//! language models produce are usually small perturbations of a correct
//! one: a flipped comparison, a delay window off by one cycle, an
//! inverted guard, a missing antecedent. This module manufactures
//! exactly those hard negatives, at any volume, with *golden* verdicts:
//! every mutant is re-proven to `Falsified` (and its counterexample
//! replayed) by [`crate::validate_scenario`] before a suite ships, and
//! a mutant that accidentally stays provable is a hard error naming the
//! operator and seed — never a silent skip.
//!
//! Falsifiability is **guaranteed, not hoped for**: after the
//! syntactic pre-filter below picks a site, the tentative mutant is
//! proven against the elaborated design under the default bounds and
//! only accepted once the prover returns `Falsified` *and* the
//! counterexample replays — rejected sites are retried
//! deterministically. A family whose every mutation site stays
//! provable simply yields fewer mutants.
//!
//! # Eligibility rules
//!
//! Mutation sites are pre-filtered so that, for the assertion shapes
//! the built-in families emit, most derived mutants have a
//! counterexample reachable within the default bounded horizon:
//!
//! - **Comparison flips** (`==`/`!=`, `===`/`!==`, `<`/`>=`, `<=`/`>`)
//!   are allowed in antecedents and in invariant bodies; in a
//!   consequent only when the antecedent is *fast* (see below).
//! - **Connective swaps** (`&&`/`||`) are allowed in antecedent
//!   position only: widening or narrowing when the property fires is
//!   falsifying there, while a consequent-side swap can accidentally
//!   weaken the property into a tautology.
//! - **Consequent sites** require a fast antecedent — one whose
//!   literals are all tiny (value <= 2) — so the mutated consequent is
//!   exercised within the bounded horizon. A guard like
//!   `count == MAX` can take `2^w` cycles to fire; mutating its
//!   consequent would yield an `Undetermined`, not a `Falsified`.
//! - **Dropped antecedents** must not leave a body that samples
//!   history (`$past`, `$stable`, ...) at the anchor cycle, where
//!   bounded pre-history and replay clamping could disagree.
//!
//! # Determinism
//!
//! `derive_mutants` draws from `StdRng` seeded with
//! `seed ^ MUTATE_TAG ^ family_tag(family)` and prints mutants through
//! the canonical [`sv_ast::print_assertion`] printer, so the same
//! (seed, family, operator) always yields byte-identical assertion
//! text — across runs, `--jobs` values, and engines.

use crate::suite::family_tag;
use crate::{Candidate, GoldenVerdict, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_ast::{
    print_assertion, Assertion, BinaryOp, DelayBound, Expr, Literal, PropExpr, SeqExpr, SysFunc,
    UnaryOp,
};
use sv_parser::parse_assertion_str;

/// Seed-stream tag of the mutation layer, xor-mixed with the scenario
/// seed and family tag so mutant selection never aliases the structural
/// randomness of any family.
const MUTATE_TAG: u64 = 0x4d75_7461; // "Muta"

/// One OP-Tree mutation operator.
///
/// Each operator turns a provable assertion into a near-miss
/// *falsifiable* one; the difficulty report stratifies scores by this
/// tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutationOp {
    /// Swap one comparison (or, in antecedent position, one `&&`/`||`
    /// connective) for its opposite.
    OperatorSwap,
    /// Shift one finite `##N` / `##[lo:hi]` delay window one cycle
    /// later.
    OffByOneBound,
    /// Invert the polarity of a plain boolean implication guard.
    GuardPolarity,
    /// Drop the antecedent of an implication, asserting the consequent
    /// unconditionally.
    DropAntecedent,
}

impl MutationOp {
    /// All operators, in round-robin application order.
    pub const ALL: [MutationOp; 4] = [
        MutationOp::OperatorSwap,
        MutationOp::OffByOneBound,
        MutationOp::GuardPolarity,
        MutationOp::DropAntecedent,
    ];

    /// Short stable tag used in mutant names, manifests, and the
    /// difficulty table.
    pub fn tag(self) -> &'static str {
        match self {
            MutationOp::OperatorSwap => "opswap",
            MutationOp::OffByOneBound => "offbyone",
            MutationOp::GuardPolarity => "polarity",
            MutationOp::DropAntecedent => "dropante",
        }
    }

    /// One-line human description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            MutationOp::OperatorSwap => "an operator is swapped for its opposite",
            MutationOp::OffByOneBound => "a delay bound is off by one cycle",
            MutationOp::GuardPolarity => "the guard polarity is inverted",
            MutationOp::DropAntecedent => "the triggering antecedent is dropped",
        }
    }

    /// Parses a tag back into an operator (manifest round-trips).
    pub fn from_tag(tag: &str) -> Option<MutationOp> {
        MutationOp::ALL.iter().copied().find(|op| op.tag() == tag)
    }

    fn index(self) -> usize {
        MutationOp::ALL.iter().position(|&op| op == self).unwrap()
    }
}

/// Where in the property a rewriter currently is, deciding which sites
/// are near-miss-safe (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Implication antecedent: comparisons and `&&`/`||` connectives.
    Ante,
    /// Invariant body or a consequent under a fast antecedent:
    /// comparisons only.
    Body,
    /// No sites: consequent under a slow antecedent, or under a
    /// polarity-inverting property operator.
    Blocked,
}

/// Pre-order site cursor shared by the counting and rewriting passes:
/// a pass with `target == usize::MAX` only counts.
struct Walk {
    target: usize,
    seen: usize,
}

impl Walk {
    fn take(&mut self) -> bool {
        let here = self.seen == self.target;
        self.seen += 1;
        here
    }
}

fn flip_cmp(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Eq => BinaryOp::Neq,
        BinaryOp::Neq => BinaryOp::Eq,
        BinaryOp::CaseEq => BinaryOp::CaseNeq,
        BinaryOp::CaseNeq => BinaryOp::CaseEq,
        BinaryOp::Lt => BinaryOp::Ge,
        BinaryOp::Ge => BinaryOp::Lt,
        BinaryOp::Le => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Le,
        _ => return None,
    })
}

fn flip_gate(op: BinaryOp) -> Option<BinaryOp> {
    match op {
        BinaryOp::LogAnd => Some(BinaryOp::LogOr),
        BinaryOp::LogOr => Some(BinaryOp::LogAnd),
        _ => None,
    }
}

/// A *fast* antecedent fires within a couple of cycles of reset for
/// the shapes the families emit: every literal it compares against is
/// tiny and nothing hides a large constant behind a fill, replication,
/// or bitwise complement.
fn ante_fast(s: &SeqExpr) -> bool {
    fn expr_fast(e: &Expr) -> bool {
        match e {
            Expr::Ident(_) => true,
            Expr::Literal(Literal::Int { value, .. }) => *value <= 2,
            Expr::Literal(Literal::Fill(ones)) => !*ones,
            Expr::Unary(UnaryOp::BitNot, _) => false,
            Expr::Unary(_, a) => expr_fast(a),
            Expr::Binary(_, a, b) => expr_fast(a) && expr_fast(b),
            Expr::Ternary(c, t, e) => expr_fast(c) && expr_fast(t) && expr_fast(e),
            Expr::Concat(items) => items.iter().all(expr_fast),
            Expr::Replicate(..) => false,
            // Select indices are structural, not compared values.
            Expr::Index(a, _) | Expr::Slice(a, _, _) => expr_fast(a),
            Expr::SysCall(_, args) => args.iter().all(expr_fast),
        }
    }
    match s {
        SeqExpr::Expr(e) => expr_fast(e),
        SeqExpr::Delay { lhs, rhs, .. } => lhs.as_deref().is_none_or(ante_fast) && ante_fast(rhs),
        SeqExpr::Repeat { seq, .. } => ante_fast(seq),
        SeqExpr::And(a, b) | SeqExpr::Or(a, b) => ante_fast(a) && ante_fast(b),
        SeqExpr::Throughout(e, s) => expr_fast(e) && ante_fast(s),
    }
}

fn cons_scope(ante: &SeqExpr, outer: Scope) -> Scope {
    if outer == Scope::Blocked || !ante_fast(ante) {
        Scope::Blocked
    } else {
        Scope::Body
    }
}

/// Whether `e` samples pre-current-cycle history.
fn samples_history(e: &Expr) -> bool {
    let is_hist = |f: &SysFunc| {
        matches!(
            f,
            SysFunc::Past | SysFunc::Stable | SysFunc::Rose | SysFunc::Fell | SysFunc::Changed
        )
    };
    match e {
        Expr::Ident(_) | Expr::Literal(_) => false,
        Expr::Unary(_, a) => samples_history(a),
        Expr::Binary(_, a, b) | Expr::Replicate(a, b) | Expr::Index(a, b) => {
            samples_history(a) || samples_history(b)
        }
        Expr::Ternary(a, b, c) | Expr::Slice(a, b, c) => {
            samples_history(a) || samples_history(b) || samples_history(c)
        }
        Expr::Concat(items) => items.iter().any(samples_history),
        Expr::SysCall(f, args) => is_hist(f) || args.iter().any(samples_history),
    }
}

/// Whether a property, anchored at cycle 0, could sample history before
/// the trace starts (conservative: `true` when unsure).
fn samples_history_at_anchor(p: &PropExpr) -> bool {
    fn seq_at_anchor(s: &SeqExpr) -> bool {
        match s {
            SeqExpr::Expr(e) => samples_history(e),
            SeqExpr::Delay {
                lhs: None, lo, rhs, ..
            } => *lo == 0 && seq_at_anchor(rhs),
            SeqExpr::Delay { lhs: Some(l), .. } => seq_at_anchor(l),
            SeqExpr::Repeat { seq, .. } => seq_at_anchor(seq),
            SeqExpr::And(a, b) | SeqExpr::Or(a, b) => seq_at_anchor(a) || seq_at_anchor(b),
            SeqExpr::Throughout(e, s) => samples_history(e) || seq_at_anchor(s),
        }
    }
    match p {
        PropExpr::Seq(s) | PropExpr::Strong(s) | PropExpr::Weak(s) => seq_at_anchor(s),
        PropExpr::Implication { ante, .. } => seq_at_anchor(ante),
        _ => true,
    }
}

// ---------------------------------------------------------------------
// OperatorSwap
// ---------------------------------------------------------------------

fn swap_expr(w: &mut Walk, e: &Expr, scope: Scope) -> Expr {
    match e {
        Expr::Binary(op, a, b) => {
            let flipped = match scope {
                Scope::Blocked => None,
                Scope::Ante => flip_cmp(*op).or_else(|| flip_gate(*op)),
                Scope::Body => flip_cmp(*op),
            };
            let op2 = match flipped {
                Some(f) if w.take() => f,
                _ => *op,
            };
            Expr::Binary(
                op2,
                Box::new(swap_expr(w, a, scope)),
                Box::new(swap_expr(w, b, scope)),
            )
        }
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(swap_expr(w, a, scope))),
        Expr::Ternary(c, t, e2) => Expr::Ternary(
            Box::new(swap_expr(w, c, scope)),
            Box::new(swap_expr(w, t, scope)),
            Box::new(swap_expr(w, e2, scope)),
        ),
        Expr::Concat(items) => Expr::Concat(items.iter().map(|x| swap_expr(w, x, scope)).collect()),
        Expr::Replicate(n, x) => Expr::Replicate(n.clone(), Box::new(swap_expr(w, x, scope))),
        // Select indices are structural: not mutation sites.
        Expr::Index(a, i) => Expr::Index(Box::new(swap_expr(w, a, scope)), i.clone()),
        Expr::Slice(a, h, l) => Expr::Slice(Box::new(swap_expr(w, a, scope)), h.clone(), l.clone()),
        Expr::SysCall(f, args) => {
            Expr::SysCall(*f, args.iter().map(|x| swap_expr(w, x, scope)).collect())
        }
        Expr::Ident(_) | Expr::Literal(_) => e.clone(),
    }
}

fn swap_seq(w: &mut Walk, s: &SeqExpr, scope: Scope) -> SeqExpr {
    match s {
        SeqExpr::Expr(e) => SeqExpr::Expr(swap_expr(w, e, scope)),
        SeqExpr::Delay { lhs, lo, hi, rhs } => SeqExpr::Delay {
            lhs: lhs.as_ref().map(|l| Box::new(swap_seq(w, l, scope))),
            lo: *lo,
            hi: *hi,
            rhs: Box::new(swap_seq(w, rhs, scope)),
        },
        SeqExpr::Repeat { seq, lo, hi } => SeqExpr::Repeat {
            seq: Box::new(swap_seq(w, seq, scope)),
            lo: *lo,
            hi: *hi,
        },
        SeqExpr::And(a, b) => SeqExpr::And(
            Box::new(swap_seq(w, a, scope)),
            Box::new(swap_seq(w, b, scope)),
        ),
        SeqExpr::Or(a, b) => SeqExpr::Or(
            Box::new(swap_seq(w, a, scope)),
            Box::new(swap_seq(w, b, scope)),
        ),
        SeqExpr::Throughout(e, s2) => {
            SeqExpr::Throughout(swap_expr(w, e, scope), Box::new(swap_seq(w, s2, scope)))
        }
    }
}

fn swap_prop(w: &mut Walk, p: &PropExpr, scope: Scope) -> PropExpr {
    match p {
        PropExpr::Seq(s) => PropExpr::Seq(swap_seq(w, s, scope)),
        PropExpr::Strong(s) => PropExpr::Strong(swap_seq(w, s, scope)),
        PropExpr::Weak(s) => PropExpr::Weak(swap_seq(w, s, scope)),
        // Under negation or disjunction a local flip is not guaranteed
        // falsifying; block sites there.
        PropExpr::Not(x) => PropExpr::Not(Box::new(swap_prop(w, x, Scope::Blocked))),
        PropExpr::Or(a, b) => PropExpr::Or(
            Box::new(swap_prop(w, a, Scope::Blocked)),
            Box::new(swap_prop(w, b, Scope::Blocked)),
        ),
        PropExpr::And(a, b) => PropExpr::And(
            Box::new(swap_prop(w, a, scope)),
            Box::new(swap_prop(w, b, scope)),
        ),
        PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } => {
            let ante_scope = if scope == Scope::Blocked {
                Scope::Blocked
            } else {
                Scope::Ante
            };
            let inner = cons_scope(ante, scope);
            PropExpr::Implication {
                ante: swap_seq(w, ante, ante_scope),
                non_overlap: *non_overlap,
                cons: Box::new(swap_prop(w, cons, inner)),
            }
        }
        PropExpr::SEventually(x) => {
            PropExpr::SEventually(Box::new(swap_prop(w, x, Scope::Blocked)))
        }
        PropExpr::Always(x) => PropExpr::Always(Box::new(swap_prop(w, x, scope))),
        PropExpr::Nexttime(x) => PropExpr::Nexttime(Box::new(swap_prop(w, x, scope))),
        PropExpr::Until { strong, lhs, rhs } => PropExpr::Until {
            strong: *strong,
            lhs: Box::new(swap_prop(w, lhs, Scope::Blocked)),
            rhs: Box::new(swap_prop(w, rhs, Scope::Blocked)),
        },
        PropExpr::IfElse { cond, then, alt } => PropExpr::IfElse {
            cond: cond.clone(),
            then: Box::new(swap_prop(w, then, Scope::Blocked)),
            alt: alt
                .as_ref()
                .map(|x| Box::new(swap_prop(w, x, Scope::Blocked))),
        },
    }
}

// ---------------------------------------------------------------------
// OffByOneBound
// ---------------------------------------------------------------------

fn delay_seq(w: &mut Walk, s: &SeqExpr, scope: Scope) -> SeqExpr {
    match s {
        SeqExpr::Expr(_) => s.clone(),
        SeqExpr::Delay { lhs, lo, hi, rhs } => {
            let (lo2, hi2) = match hi {
                DelayBound::Finite(h) if scope != Scope::Blocked && w.take() => {
                    (*lo + 1, DelayBound::Finite(*h + 1))
                }
                _ => (*lo, *hi),
            };
            SeqExpr::Delay {
                lhs: lhs.as_ref().map(|l| Box::new(delay_seq(w, l, scope))),
                lo: lo2,
                hi: hi2,
                rhs: Box::new(delay_seq(w, rhs, scope)),
            }
        }
        SeqExpr::Repeat { seq, lo, hi } => SeqExpr::Repeat {
            seq: Box::new(delay_seq(w, seq, scope)),
            lo: *lo,
            hi: *hi,
        },
        SeqExpr::And(a, b) => SeqExpr::And(
            Box::new(delay_seq(w, a, scope)),
            Box::new(delay_seq(w, b, scope)),
        ),
        SeqExpr::Or(a, b) => SeqExpr::Or(
            Box::new(delay_seq(w, a, scope)),
            Box::new(delay_seq(w, b, scope)),
        ),
        SeqExpr::Throughout(e, s2) => {
            SeqExpr::Throughout(e.clone(), Box::new(delay_seq(w, s2, scope)))
        }
    }
}

fn delay_prop(w: &mut Walk, p: &PropExpr, scope: Scope) -> PropExpr {
    match p {
        PropExpr::Seq(s) => PropExpr::Seq(delay_seq(w, s, scope)),
        PropExpr::Strong(s) => PropExpr::Strong(delay_seq(w, s, scope)),
        PropExpr::Weak(s) => PropExpr::Weak(delay_seq(w, s, scope)),
        PropExpr::Not(x) => PropExpr::Not(Box::new(delay_prop(w, x, Scope::Blocked))),
        PropExpr::Or(a, b) => PropExpr::Or(
            Box::new(delay_prop(w, a, Scope::Blocked)),
            Box::new(delay_prop(w, b, Scope::Blocked)),
        ),
        PropExpr::And(a, b) => PropExpr::And(
            Box::new(delay_prop(w, a, scope)),
            Box::new(delay_prop(w, b, scope)),
        ),
        PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } => {
            let ante_scope = if scope == Scope::Blocked {
                Scope::Blocked
            } else {
                Scope::Ante
            };
            let inner = cons_scope(ante, scope);
            PropExpr::Implication {
                ante: delay_seq(w, ante, ante_scope),
                non_overlap: *non_overlap,
                cons: Box::new(delay_prop(w, cons, inner)),
            }
        }
        PropExpr::SEventually(x) => {
            PropExpr::SEventually(Box::new(delay_prop(w, x, Scope::Blocked)))
        }
        PropExpr::Always(x) => PropExpr::Always(Box::new(delay_prop(w, x, scope))),
        PropExpr::Nexttime(x) => PropExpr::Nexttime(Box::new(delay_prop(w, x, scope))),
        PropExpr::Until { strong, lhs, rhs } => PropExpr::Until {
            strong: *strong,
            lhs: Box::new(delay_prop(w, lhs, Scope::Blocked)),
            rhs: Box::new(delay_prop(w, rhs, Scope::Blocked)),
        },
        PropExpr::IfElse { cond, then, alt } => PropExpr::IfElse {
            cond: cond.clone(),
            then: Box::new(delay_prop(w, then, Scope::Blocked)),
            alt: alt
                .as_ref()
                .map(|x| Box::new(delay_prop(w, x, Scope::Blocked))),
        },
    }
}

// ---------------------------------------------------------------------
// Rewriting entry point
// ---------------------------------------------------------------------

/// Rewrites assertion `a` by applying `op` at pre-order site `target`;
/// returns the (possibly unchanged) assertion and the number of
/// eligible sites seen. Counting passes use `target == usize::MAX`.
fn rewrite(a: &Assertion, op: MutationOp, target: usize) -> (Assertion, usize) {
    let mut w = Walk { target, seen: 0 };
    let body = match op {
        MutationOp::OperatorSwap => swap_prop(&mut w, &a.body, Scope::Body),
        MutationOp::OffByOneBound => delay_prop(&mut w, &a.body, Scope::Body),
        MutationOp::GuardPolarity => match &a.body {
            PropExpr::Implication {
                ante: SeqExpr::Expr(guard),
                non_overlap,
                cons,
            } => {
                let flipped = if w.take() {
                    match guard {
                        Expr::Unary(UnaryOp::LogNot, inner) => (**inner).clone(),
                        other => Expr::Unary(UnaryOp::LogNot, Box::new(other.clone())),
                    }
                } else {
                    guard.clone()
                };
                PropExpr::Implication {
                    ante: SeqExpr::Expr(flipped),
                    non_overlap: *non_overlap,
                    cons: cons.clone(),
                }
            }
            other => other.clone(),
        },
        MutationOp::DropAntecedent => match &a.body {
            PropExpr::Implication {
                ante: _,
                non_overlap: false,
                cons,
            } if !samples_history_at_anchor(cons) => {
                if w.take() {
                    (**cons).clone()
                } else {
                    a.body.clone()
                }
            }
            other => other.clone(),
        },
    };
    let mutated = Assertion {
        label: a.label.clone(),
        clock: a.clock.clone(),
        disable: a.disable.clone(),
        body,
    };
    (mutated, w.seen)
}

fn site_count(a: &Assertion, op: MutationOp) -> usize {
    rewrite(a, op, usize::MAX).1
}

/// Derives up to `count` mutated candidates from the scenario's
/// family-authored provable candidates, round-robining over
/// [`MutationOp::ALL`]. See [`derive_mutants_with_ops`].
pub fn derive_mutants(scenario: &Scenario, count: usize) -> Vec<Candidate> {
    derive_mutants_with_ops(scenario, count, &MutationOp::ALL)
}

/// Proves a tentative mutant under the *default* bounds (never the
/// caller's engine choice, so suites stay byte-identical across
/// engines) and accepts it only on `Falsified` with a replaying
/// counterexample.
fn confirmed_falsifiable(bound: &crate::BoundScenario, a: &Assertion) -> bool {
    let cfg = fv_core::ProveConfig::default();
    match fv_core::prove_with_stats(&bound.netlist, a, &bound.consts, cfg) {
        Ok((fv_core::ProveResult::Falsified { cex }, _)) => {
            fv_core::replay_design_cex(&bound.netlist, a, &bound.consts, cfg, &cex).unwrap_or(false)
        }
        _ => false,
    }
}

/// Derives up to `count` mutated candidates restricted to `ops`.
///
/// The eligibility rules (module docs) are a syntactic pre-filter;
/// every tentative mutant is then **re-proven before it enters the
/// pool**: only mutants the default-bounds prover falsifies — with a
/// counterexample that replays on the reference simulator — are
/// emitted. A mutation site that accidentally yields a provable (or
/// undecided) assertion is rejected and another site or candidate is
/// tried, deterministically.
///
/// Deterministic in (scenario seed, family, `ops`): re-running — under
/// any `--jobs` value or engine selection — yields byte-identical
/// mutant names, assertion text, and order. At most one mutant is
/// derived per (candidate, operator) pair, so the yield is capped by
/// the option space; fewer than `count` mutants are returned when it
/// is exhausted.
pub fn derive_mutants_with_ops(
    scenario: &Scenario,
    count: usize,
    ops: &[MutationOp],
) -> Vec<Candidate> {
    if count == 0 || ops.is_empty() {
        return Vec::new();
    }
    let Ok(bound) = crate::bind_scenario(scenario) else {
        // Unelaborable collateral is a generator bug surfaced by
        // `validate_scenario`; there is nothing sound to mutate.
        return Vec::new();
    };
    // Family-authored provable candidates are the mutation substrate;
    // mutants are never re-mutated.
    let parsed: Vec<Option<Assertion>> = scenario
        .candidates
        .iter()
        .map(|c| {
            if c.verdict.is_provable() && c.mutation.is_none() {
                parse_assertion_str(&c.sva).ok()
            } else {
                None
            }
        })
        .collect();
    let mut used = vec![[false; MutationOp::ALL.len()]; parsed.len()];
    let mut rng =
        StdRng::seed_from_u64(scenario.params.seed ^ MUTATE_TAG ^ family_tag(scenario.family));
    let mut out = Vec::new();
    'rounds: for k in 0..count {
        for j in 0..ops.len() {
            let op = ops[(k + j) % ops.len()];
            loop {
                let avail: Vec<usize> = parsed
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| {
                        !used[*i][op.index()] && p.as_ref().is_some_and(|a| site_count(a, op) > 0)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if avail.is_empty() {
                    break; // this operator is exhausted; try the next
                }
                let i = avail[rng.gen_range(0..avail.len())];
                // One attempt per (candidate, operator) pair, successful or not.
                used[i][op.index()] = true;
                let tree = parsed[i].as_ref().unwrap();
                let n = site_count(tree, op);
                let start = rng.gen_range(0..n);
                let accepted = (0..n).find_map(|s| {
                    let (mutated, _) = rewrite(tree, op, (start + s) % n);
                    confirmed_falsifiable(&bound, &mutated).then_some(mutated)
                });
                let Some(mutated) = accepted else {
                    continue; // no falsifying site here; another candidate
                };
                let orig = &scenario.candidates[i];
                out.push(Candidate {
                    name: format!("{}_mut_{}", orig.name, op.tag()),
                    sva: print_assertion(&mutated),
                    nl: format!(
                        "that a near-miss variant of the following reference property holds \
                         ({}): {}",
                        op.describe(),
                        orig.nl
                    ),
                    verdict: GoldenVerdict::Falsifiable,
                    mutation: Some(op),
                });
                continue 'rounds;
            }
        }
        break; // every operator exhausted its option space
    }
    out
}

/// Appends up to `count` derived mutants to the scenario's candidate
/// pool (the `SuiteConfig::mutations` knob).
pub fn mutate_scenario(scenario: &mut Scenario, count: usize) {
    let mutants = derive_mutants(scenario, count);
    scenario.candidates.extend(mutants);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator, GenParams};

    fn fifo_scenario(seed: u64) -> Scenario {
        generator("fifo").unwrap().generate(&GenParams {
            depth: 4,
            width: 8,
            seed,
        })
    }

    #[test]
    fn all_four_operators_fire_on_the_fifo_family() {
        let s = fifo_scenario(7);
        for op in MutationOp::ALL {
            let mutants = derive_mutants_with_ops(&s, 4, &[op]);
            assert!(!mutants.is_empty(), "{}: no mutants", op.tag());
            for m in &mutants {
                assert_eq!(m.mutation, Some(op));
                assert_eq!(m.verdict, GoldenVerdict::Falsifiable);
                assert!(m.name.ends_with(op.tag()), "{}", m.name);
            }
        }
    }

    #[test]
    fn mutants_differ_from_their_originals_and_round_trip() {
        let s = fifo_scenario(11);
        for m in derive_mutants(&s, 8) {
            assert!(
                s.candidates.iter().all(|c| c.sva != m.sva),
                "mutant must differ: {}",
                m.sva
            );
            let tree = parse_assertion_str(&m.sva).expect("mutant parses");
            assert_eq!(print_assertion(&tree), m.sva, "canonical print");
        }
    }

    #[test]
    fn derivation_is_deterministic_and_unique_per_operator_pair() {
        let s = fifo_scenario(3);
        let a = derive_mutants(&s, 16);
        let b = derive_mutants(&s, 16);
        assert_eq!(a, b, "byte-identical across runs");
        let mut names: Vec<&str> = a.iter().map(|m| m.name.as_str()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "unique mutant names");
    }

    #[test]
    fn exhausted_option_space_caps_the_yield() {
        let s = fifo_scenario(5);
        let all = derive_mutants(&s, 1000);
        let provables = s
            .candidates
            .iter()
            .filter(|c| c.verdict.is_provable())
            .count();
        assert!(all.len() <= provables * MutationOp::ALL.len());
        assert!(!all.is_empty());
    }

    #[test]
    fn from_tag_round_trips() {
        for op in MutationOp::ALL {
            assert_eq!(MutationOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(MutationOp::from_tag("bogus"), None);
    }
}
