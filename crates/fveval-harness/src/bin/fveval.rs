//! The `fveval` command-line interface.
//!
//! ```text
//! fveval <command> [--full] [--seed N] [--jobs N] [--out DIR]
//! fveval gen [--family NAME]... [--count N] [--depth N] [--width N]
//!            [--seed N] [--eval] [--out DIR]
//!
//! Commands:
//!   table1 table2 table3 table4 table5 table6
//!   figure2 figure3 figure4 figure6
//!   gen             generate scenario suites (fveval-gen) with golden
//!                   verdicts re-proven by the formal core
//!   showcase        qualitative failure-mode examples (Figs. 7-9)
//!   validate        end-to-end dataset self-check
//!   list            available tables/figures with descriptions
//!   run-all         every table and figure above
//!
//! Flags:
//!   --full          paper-scale datasets (quick mode is the default)
//!   --seed N        dataset-generation seed (machine set, design
//!                   sweeps, and `gen` suites; the fixed human set and
//!                   the models' deterministic draws are unaffected)
//!   --jobs N        evaluation worker threads (default: all CPUs;
//!                   results are byte-identical for any value)
//!   --out DIR       output directory (default: results/)
//!
//! `gen`-only flags:
//!   --family NAME   restrict to one family (repeatable; default: all
//!                   of fifo, arbiter, handshake, gray, shift, crc)
//!   --count N       scenarios per family (default: 4, or 16 with --full)
//!   --depth N       pin the family-size knob instead of sweeping it
//!   --width N       pin the data width instead of sweeping it
//!   --eval          also run all simulated models over the generated
//!                   task set through the shared EvalEngine
//!
//! `gen` writes the suite under `--out/generated/` (one `<id>.sv` and
//! one `<id>.tasks.md` per scenario plus `manifest.{md,csv}`) and the
//! validation report to `--out/gen.{md,csv}`. Output is byte-identical
//! for a fixed `--seed`.
//! ```
//!
//! Results are printed to stdout and written under `--out` as markdown
//! and CSV. All commands of one invocation share a single `EvalEngine`,
//! so `run-all` scores the overlap between experiments (e.g. the human
//! set in Tables 1/2 and Figure 6) only once.
//!
//! After the tables, the run's formal-core work summary is written to
//! `--out/prover_stats.{md,csv}` (and echoed to stderr): how many
//! prover queries went to SAT versus being killed by random or ternary
//! simulation, and how often SAT calls reused an already-warmed solver.
//! See `ARCHITECTURE.md` for what each column means.

use fveval_core::EvalEngine;
use fveval_harness::HarnessOptions;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    opts: HarnessOptions,
    jobs: usize,
    out_dir: PathBuf,
    gen: GenArgs,
}

/// Flags only the `gen` subcommand reads.
#[derive(Default)]
struct GenArgs {
    families: Vec<String>,
    count: Option<usize>,
    depth: Option<u32>,
    width: Option<u32>,
    eval: bool,
}

const COMMANDS: &[(&str, &str)] = &[
    ("table1", "NL2SVA-Human, zero-shot greedy, all 8 models"),
    ("table2", "NL2SVA-Human pass@k under sampling (top models)"),
    (
        "table3",
        "NL2SVA-Machine, zero-shot and 3-shot, all 8 models",
    ),
    ("table4", "NL2SVA-Machine pass@k under sampling, 3-shot"),
    ("table5", "Design2SVA pass@1/pass@5 per design category"),
    ("table6", "NL2SVA-Human dataset composition"),
    ("figure2", "human-set NL/SVA token-length distributions"),
    ("figure3", "machine-set NL/SVA token-length distributions"),
    ("figure4", "design-sweep generated-logic token lengths"),
    ("figure6", "BLEU vs functional-equivalence correlation"),
    (
        "gen",
        "generate scenario suites with prover-confirmed golden verdicts",
    ),
    ("showcase", "qualitative failure-mode examples (Figs. 7-9)"),
    ("validate", "end-to-end dataset self-check"),
    ("list", "this command list"),
    ("run-all", "every table and figure above"),
];

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut opts = HarnessOptions::default();
    let mut jobs = 0usize;
    let mut out_dir = PathBuf::from("results");
    let mut gen = GenArgs::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| "bad seed".to_string())?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| "bad job count".to_string())?;
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--family" => {
                let v = args.next().ok_or("--family needs a value")?;
                if fveval_gen::generator(&v).is_none() {
                    let known: Vec<&str> = fveval_gen::generators()
                        .iter()
                        .map(|g| g.family())
                        .collect();
                    return Err(format!(
                        "unknown family '{v}' (known: {})",
                        known.join(", ")
                    ));
                }
                gen.families.push(v);
            }
            "--count" => {
                let v = args.next().ok_or("--count needs a value")?;
                gen.count = Some(v.parse().map_err(|_| "bad count".to_string())?);
            }
            "--depth" => {
                let v = args.next().ok_or("--depth needs a value")?;
                gen.depth = Some(v.parse().map_err(|_| "bad depth".to_string())?);
            }
            "--width" => {
                let v = args.next().ok_or("--width needs a value")?;
                gen.width = Some(v.parse().map_err(|_| "bad width".to_string())?);
            }
            "--eval" => gen.eval = true,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    // The gen-only flags must not be silently dropped by other commands.
    if command != "gen" {
        let stray = [
            (!gen.families.is_empty(), "--family"),
            (gen.count.is_some(), "--count"),
            (gen.depth.is_some(), "--depth"),
            (gen.width.is_some(), "--width"),
            (gen.eval, "--eval"),
        ]
        .into_iter()
        .filter_map(|(set, name)| set.then_some(name))
        .collect::<Vec<_>>();
        if !stray.is_empty() {
            return Err(format!(
                "{} only applies to the 'gen' command\n{}",
                stray.join(", "),
                usage()
            ));
        }
    }
    Ok(Args {
        command,
        opts,
        jobs,
        out_dir,
        gen,
    })
}

/// Runs the `gen` subcommand: generate, validate through the prover,
/// export, optionally evaluate.
fn run_gen(args: &Args, engine: &EvalEngine) -> Result<(), String> {
    let started = std::time::Instant::now();
    let cfg = fveval_data::SuiteConfig {
        families: args.gen.families.clone(),
        // --full scales the suite like it scales every other command.
        per_family: args
            .gen
            .count
            .unwrap_or(if args.opts.full { 16 } else { 4 }),
        seed: args.opts.seed,
        depth: args.gen.depth,
        width: args.gen.width,
    };
    let (table, notes, suite, errors) = fveval_harness::gen_report(engine, &cfg, args.gen.eval)?;
    println!("{}", table.to_markdown());
    println!("{notes}");
    let md = format!("{}\n{notes}", table.to_markdown());
    write_out(&args.out_dir, "gen", &md, Some(&table.to_csv()));
    let suite_dir = args.out_dir.join("generated");
    let files = fveval_gen::write_suite(&suite_dir, &suite)
        .map_err(|e| format!("cannot write suite under {}: {e}", suite_dir.display()))?;
    eprintln!(
        "[gen: {} scenarios, {} files under {} in {:.1?}]",
        suite.scenarios.len(),
        files,
        suite_dir.display(),
        started.elapsed()
    );
    if errors > 0 {
        return Err(format!("{errors} golden-verdict mismatch(es)"));
    }
    Ok(())
}

fn usage() -> String {
    let names: Vec<&str> = COMMANDS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: fveval <{}> [--full] [--seed N] [--jobs N] [--out DIR]\n\
         \x20      fveval gen [--family NAME]... [--count N] [--depth N] \
         [--width N] [--seed N] [--eval] [--out DIR]",
        names.join("|")
    )
}

fn list_commands() -> String {
    let mut out = String::from("Available commands:\n");
    for (name, description) in COMMANDS {
        out.push_str(&format!("  {name:<10} {description}\n"));
    }
    out
}

fn write_out(dir: &Path, name: &str, markdown: &str, csv: Option<&str>) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let md_path = dir.join(format!("{name}.md"));
    if let Err(e) = std::fs::write(&md_path, markdown) {
        eprintln!("warning: cannot write {}: {e}", md_path.display());
    }
    if let Some(csv) = csv {
        let csv_path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&csv_path, csv) {
            eprintln!("warning: cannot write {}: {e}", csv_path.display());
        }
    }
}

fn run_one(
    cmd: &str,
    engine: &EvalEngine,
    opts: &HarnessOptions,
    out_dir: &Path,
) -> Result<(), String> {
    let started = std::time::Instant::now();
    match cmd {
        "table1" => {
            let t = fveval_harness::table1(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table1", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table2" => {
            let t = fveval_harness::table2(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table2", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table3" => {
            let t = fveval_harness::table3(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table3", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table4" => {
            let t = fveval_harness::table4(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table4", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table5" => {
            let t = fveval_harness::table5(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table5", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table6" => {
            let t = fveval_harness::table6();
            println!("{}", t.to_markdown());
            write_out(out_dir, "table6", &t.to_markdown(), Some(&t.to_csv()));
        }
        "figure2" => {
            let s = fveval_harness::figure2();
            println!("{s}");
            write_out(out_dir, "figure2", &s, None);
        }
        "figure3" => {
            let s = fveval_harness::figure3(opts);
            println!("{s}");
            write_out(out_dir, "figure3", &s, None);
        }
        "figure4" => {
            let s = fveval_harness::figure4(opts);
            println!("{s}");
            write_out(out_dir, "figure4", &s, None);
        }
        "figure6" => {
            let (t, notes) = fveval_harness::figure6(engine, opts);
            println!("{}", t.to_markdown());
            println!("{notes}");
            let md = format!("{}\n{notes}", t.to_markdown());
            write_out(out_dir, "figure6", &md, Some(&t.to_csv()));
        }
        "showcase" => {
            let s = fveval_harness::showcase(engine, opts);
            println!("{s}");
            write_out(out_dir, "showcase", &s, None);
        }
        "validate" => {
            let (report, errors) = fveval_harness::validate(opts);
            println!("{report}");
            write_out(out_dir, "validate", &report, None);
            if errors > 0 {
                return Err(format!("{errors} validation error(s)"));
            }
        }
        "list" => {
            println!("{}", list_commands());
            return Ok(());
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    }
    eprintln!("[{cmd} finished in {:.1?}]", started.elapsed());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = EvalEngine::with_jobs(args.jobs);
    let commands: Vec<&str> = if args.command == "run-all" {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "figure2", "figure3",
            "figure4", "figure6", "showcase",
        ]
    } else {
        vec![args.command.as_str()]
    };
    for cmd in commands {
        let outcome = if cmd == "gen" {
            run_gen(&args, &engine)
        } else {
            run_one(cmd, &engine, &args.opts, &args.out_dir)
        };
        if let Err(e) = outcome {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let stats = engine.cache_stats();
    if stats.hits + stats.misses > 0 {
        eprintln!(
            "[engine: {} jobs | verdict cache: {} hits, {} misses, {} entries]",
            engine.jobs(),
            stats.hits,
            stats.misses,
            stats.entries
        );
    }
    let prover = engine.prover_stats();
    if prover.queries() > 0 {
        eprintln!(
            "[prover: {} queries | {} SAT calls ({} on a reused solver), \
             {} sim kills, {} ternary kills]",
            prover.queries(),
            prover.sat_calls,
            prover.solver_reuse_hits,
            prover.sim_kills,
            prover.ternary_kills,
        );
        let t = prover_stats_table(&prover, &stats);
        write_out(
            &args.out_dir,
            "prover_stats",
            &t.to_markdown(),
            Some(&t.to_csv()),
        );
    }
    ExitCode::SUCCESS
}

/// Renders the run's formal-core work summary: one row of counters
/// describing how verdicts were produced (see `ARCHITECTURE.md`).
fn prover_stats_table(
    prover: &fveval_core::ProverStats,
    cache: &fveval_core::CacheStats,
) -> fveval_core::Table {
    let mut t = fveval_core::Table::new(
        "Prover statistics (this run)",
        &[
            "Queries",
            "SAT calls",
            "Solver reuse hits",
            "Sim kills",
            "Ternary kills",
            "Verdict-cache hits",
        ],
    );
    t.push_row([
        prover.queries().to_string().into(),
        prover.sat_calls.to_string().into(),
        prover.solver_reuse_hits.to_string().into(),
        prover.sim_kills.to_string().into(),
        prover.ternary_kills.to_string().into(),
        cache.hits.to_string().into(),
    ]);
    t
}
