//! Formal verification of the FIFO testbench's own modeling logic.
//!
//! Loads the NL2SVA-Human 1R1W FIFO collateral, elaborates it with the
//! repository's front-end, and model-checks its reference assertions
//! *as properties of the testbench model* with free `wr/rd` stimuli.
//! Safety assertions about unconstrained inputs (e.g. "no underflow")
//! are expected to be FALSIFIED — the tool then prints the offending
//! stimulus trace, exactly what an FV engineer reads off a counterexample.
//!
//! ```text
//! cargo run --example fifo_verification
//! ```

use fveval_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = testbenches()
        .into_iter()
        .find(|t| t.name == "fifo_1r1w")
        .expect("dataset ships the FIFO");
    let file = parse_source(tb.source)?;
    let netlist = elaborate(&file, tb.top)?;
    println!(
        "elaborated {}: {} nets, {} registers, {} inputs",
        tb.top,
        netlist.nets.len(),
        netlist.regs().count(),
        netlist.inputs().count()
    );

    // 1. Simulate a push/pop sequence through the model.
    let mut sim = Simulator::new(&netlist)?;
    let stimuli = [
        // (wr_vld, wr_ready, rd_vld, rd_ready)
        (1u128, 1u128, 0u128, 0u128),
        (1, 1, 0, 0),
        (0, 0, 1, 1),
        (0, 0, 1, 1),
    ];
    for (i, &(wv, wr, rv, rr)) in stimuli.iter().enumerate() {
        sim.step(&move |name, _| match name {
            "reset_" => 1,
            "wr_vld" => wv,
            "wr_ready" => wr,
            "rd_vld" => rv,
            "rd_ready" => rr,
            "wr_data" => 1,
            _ => 0,
        });
        println!(
            "cycle {i}: empty={} rd_ptr={} out_data={}",
            sim.read_net("fifo_empty").unwrap_or(0),
            sim.read_net("fifo_rd_ptr").unwrap_or(0),
            sim.read_net("fifo_out_data").unwrap_or(0),
        );
    }

    // 2. Model-check reference assertions against the model with FREE
    //    stimuli: underflow protection cannot be proven without input
    //    assumptions, and the counterexample shows why.
    let cases = human_cases();
    for case in cases.iter().filter(|c| c.testbench == "fifo_1r1w").take(3) {
        let assertion = parse_assertion_str(&case.reference)?;
        let result = prove(&netlist, &assertion, &[], ProveConfig::default())?;
        println!("\n{}\n  {}", case.id, case.reference);
        match result {
            ProveResult::Proven { k } => println!("  PROVEN (k-induction, k={k})"),
            ProveResult::Undetermined => println!("  UNDETERMINED (bounds exhausted)"),
            ProveResult::Falsified { cex } => {
                println!("  FALSIFIED — unconstrained stimuli break it:");
                for line in cex.to_string().lines().take(8) {
                    println!("  {line}");
                }
            }
        }
    }
    Ok(())
}
