//! The FVEval evaluation framework — the paper's primary contribution.
//!
//! Given a [`fveval_llm::Backend`] and a dataset, the runners in this
//! crate reproduce the paper's end-to-end flow:
//!
//! 1. assemble the prompt and collect the model's response(s),
//! 2. score **syntax** with the real parser (tool syntax check),
//! 3. score **functional** / **partial** correctness with the formal
//!    assertion-equivalence prover (NL2SVA) or the model checker
//!    (Design2SVA),
//! 4. score **BLEU** against the reference, and
//! 5. aggregate per-model means and unbiased **pass@k**.
//!
//! Every table and figure of the paper maps onto these runners; see
//! `ARCHITECTURE.md` for the evaluation spine and the `fveval` CLI for
//! the regeneration entry points.

#![deny(missing_docs)]

mod bleu;
mod design2sva;
mod engine;
mod metrics;
mod nl2sva;
mod passk;
mod report;
mod stats;
mod tokenize;

pub use bleu::bleu;
pub use design2sva::{compile_design, CompiledDesign, Design2svaRunner, DesignSession};
pub use engine::{
    design_task_specs, generated_task_specs, human_task_specs, machine_task_specs, CacheStats,
    EvalEngine, SlowCheck, VerdictRecord,
};
pub use fv_core::ProverStats;
pub use metrics::{CaseEvals, MetricSummary, SampleEval};
pub use nl2sva::{Nl2svaRunner, NlSession, PromptInfo};
pub use passk::pass_at_k;
pub use report::{Table, TableCell};
pub use stats::{histogram, pearson, Histogram};
pub use tokenize::{code_tokens, token_count};
