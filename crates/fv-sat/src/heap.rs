//! Max-heap over variables ordered by VSIDS activity.
//!
//! The heap stores variable indices and keeps a reverse map so that
//! `decrease`/`increase` of a key is O(log n). Activities are held by the
//! solver and passed in by reference, keeping the heap free of floats.

use crate::Var;

/// Indexed binary max-heap of variables keyed by external activities.
#[derive(Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// `pos[v] == usize::MAX` when v is not in the heap.
    pos: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarHeap {
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    pub fn grow_to(&mut self, n_vars: usize) {
        self.pos.resize(n_vars, NOT_IN_HEAP);
    }

    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NOT_IN_HEAP
    }

    pub fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    pub fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn update(&mut self, v: Var, act: &[f64]) {
        if let Some(&i) = self.pos.get(v.index()) {
            if i != NOT_IN_HEAP {
                self.sift_up(i, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    #[inline]
    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(5);
        for i in 0..5 {
            h.insert(Var(i), &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&act))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn update_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow_to(3);
        for i in 0..3 {
            h.insert(Var(i), &act);
        }
        act[0] = 10.0;
        h.update(Var(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var(0)));
    }

    #[test]
    fn double_insert_is_idempotent() {
        let act = vec![1.0];
        let mut h = VarHeap::new();
        h.grow_to(1);
        h.insert(Var(0), &act);
        h.insert(Var(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var(0)));
        assert!(h.pop_max(&act).is_none());
    }
}
