//! IC3/PDR: property-directed reachability over the incremental SAT
//! solver.
//!
//! Where the bounded schedule ([`crate::ProofSession`]) unrolls time
//! frames, PDR reasons over a *single* copy of the transition relation
//! and a chain of over-approximations `R_0 ⊆ R_1 ⊆ …` of the states
//! reachable in at most `i` steps. Each `R_i` is a set of learned
//! clauses; a property is proven the moment two adjacent frames carry
//! the same clause set (a fixpoint: `R_i` is an inductive invariant
//! stronger than the property), so inductive depth never bounds the
//! engine the way `max_induction` bounds k-induction.
//!
//! # Frames are clause groups
//!
//! The whole chain lives in **one** long-lived [`Solver`], using the
//! same selector machinery BMC uses for reset pinning:
//!
//! - `act[0]` guards the initial-state unit clauses (reset values);
//! - `act[i]` (`i ≥ 1`) guards the clauses learned *at level `i`*.
//!
//! A clause learned at level `i` holds in every `R_j` with `j ≤ i`, so
//! a query against `R_j` simply assumes `act[j..]` — frame membership
//! is an assumption set, never a re-encoding, and learned-lemma reuse
//! across frames comes for free.
//!
//! # Temporal properties
//!
//! The paper's assertions are temporal (bounded SVA), not plain state
//! invariants, so the "bad state" test is a *cone*: the existing
//! monitor encoder ([`crate::encode_assertion`] machinery) unrolls the
//! attempt anchored at the symbolic state over its horizon, and PDR
//! asks whether any `R_N` state anchors a violated attempt. Obligation
//! cubes are full assignments to the anchor-state registers;
//! consecution queries use only the single-step transition `T` between
//! the first two frames of that unrolling. Monitors that read
//! *negative* (pre-anchor) cycles are refused
//! ([`ProveResult::Undetermined`]): the shared encoder clamps those
//! reads to the anchor frame, which is only sound when the anchor is
//! the initial state.
//!
//! # Determinism
//!
//! Proof-obligation ordering is fully deterministic: cubes are decoded
//! in register-bit order, generalization drops literals in ascending
//! bit order, and propagation visits levels and cubes in insertion
//! order. The only nondeterministic inputs are the cooperative cancel
//! token (portfolio racing) and the wall-clock budget; both abort to
//! `Undetermined`, never to a different verdict.

use crate::cex::CexValue;
use crate::env::DesignTraceEnv;
use crate::error::EncodeError;
use crate::monitor::{encode_assertion_at, horizon_for};
use crate::prove::{replay_design_cex, DesignCex, ProveConfig, ProveResult};
use crate::stats::ProverStats;
use fv_aig::{Aig, CnfEmitter};
use fv_sat::{Lit, SolveResult, Solver};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use sv_ast::Assertion;
use sv_synth::{FrameExpander, Netlist};

/// Per-query conflict budget: bounds the work of any single SAT call
/// deterministically (the wall-clock budget in
/// [`ProveConfig::prove_budget_ms`] is the machine-dependent backstop).
const QUERY_CONFLICT_BUDGET: u64 = 200_000;

/// Frame-count backstop far above any suite design's convergence depth.
const MAX_FRAMES: usize = 256;

/// A conjunction of state literals: `(register bit index, polarity)`,
/// sorted by bit index. Obligation cubes are full states (one literal
/// per register bit); generalized cubes are sub-conjunctions.
type Cube = Vec<(usize, bool)>;

/// Outcome of a PDR run, with whether it was cut short (cancel token,
/// wall budget, or conflict budget) rather than concluding on its own.
pub(crate) struct PdrOutcome {
    pub(crate) result: ProveResult,
    pub(crate) interrupted: bool,
}

/// Proves `assertion` on `netlist` with the IC3/PDR engine alone.
///
/// Same contract as [`crate::prove_with_stats`], discharged by
/// property-directed reachability instead of the bounded BMC +
/// k-induction schedule: `Proven` means the engine found an inductive
/// invariant (the `k` reported is the frame level where the chain
/// closed), `Falsified` counterexamples are replay-validated through
/// [`replay_design_cex`] before being returned, and `Undetermined`
/// covers unbounded operators, monitors with pre-anchor reads, and
/// exhausted budgets. Verdicts agree with the bounded engine whenever
/// both conclude.
///
/// # Errors
///
/// [`EncodeError`] as for [`crate::prove`].
///
/// # Examples
///
/// A wrapping counter whose unreachable band makes `q != 7` true but
/// never k-inductive — the bounded schedule gives up, PDR strengthens
/// the invariant and proves it:
///
/// ```
/// use fv_core::{prove, prove_pdr, ProveConfig, ProveResult};
/// use sv_parser::{parse_assertion_str, parse_source};
/// use sv_synth::elaborate;
///
/// let f = parse_source(
///     "module m (clk, reset_, en, q);\n\
///      input clk; input reset_; input en;\noutput [2:0] q;\n\
///      reg [2:0] cnt;\n\
///      always @(posedge clk) begin\n\
///      if (!reset_) cnt <= 3'd0;\n\
///      else if (en) cnt <= (cnt == 3'd5) ? 3'd0 : cnt + 3'd1;\nend\n\
///      assign q = cnt;\nendmodule\n",
/// )
/// .unwrap();
/// let nl = elaborate(&f, "m").unwrap();
/// let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
/// let cfg = ProveConfig::default();
/// assert_eq!(prove(&nl, &a, &[], cfg).unwrap(), ProveResult::Undetermined);
/// let (r, stats) = prove_pdr(&nl, &a, &[], cfg).unwrap();
/// assert!(r.is_proven());
/// assert!(stats.pdr_clauses_learned > 0);
/// ```
pub fn prove_pdr(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
) -> Result<(ProveResult, ProverStats), EncodeError> {
    let mut stats = ProverStats {
        sessions_opened: 1,
        session_checks: 1,
        ..ProverStats::default()
    };
    let out = run_pdr(netlist, assertion, consts, cfg, None, &mut stats)?;
    if !matches!(out.result, ProveResult::Undetermined) {
        stats.pdr_wins += 1;
    }
    Ok((out.result, stats))
}

/// Engine entry point shared by [`prove_pdr`], the session's PDR mode,
/// and the portfolio racer. `cancel` is polled between queries *and*
/// from inside the solver's search loop; a raised token aborts to
/// `Undetermined` with `interrupted = true`.
pub(crate) fn run_pdr(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
    cancel: Option<&std::sync::Arc<AtomicBool>>,
    stats: &mut ProverStats,
) -> Result<PdrOutcome, EncodeError> {
    if assertion.body.has_unbounded() {
        return Ok(PdrOutcome {
            result: ProveResult::Undetermined,
            interrupted: false,
        });
    }
    let mut engine = Pdr::build(netlist, assertion, consts, cfg, cancel)?;
    let mut span = fv_trace::span!("pdr.run");
    let result = engine.run();
    if span.is_active() {
        span.attr("frames", engine.act.len().saturating_sub(1));
        span.attr("clauses", engine.clauses_learned);
        span.attr("interrupted", engine.interrupted);
    }
    drop(span);
    stats.sat_calls += engine.sat_calls;
    stats.solver_reuse_hits += engine.sat_calls.saturating_sub(1);
    stats.pdr_frames += engine.act.len().saturating_sub(1) as u64;
    stats.pdr_clauses_learned += engine.clauses_learned;
    Ok(PdrOutcome {
        result: result?,
        interrupted: engine.interrupted,
    })
}

/// How a PDR SAT query came back.
enum Query {
    Sat,
    Unsat,
    /// Cancel token, wall budget, or conflict budget fired.
    Abort,
}

/// How a consecution query came back. The predecessor state and its
/// step inputs are decoded *inside* the query (the model is only valid
/// until the next solver mutation — retiring the temporary cube
/// selector already invalidates it).
enum RelQuery {
    Sat { pred: Cube, step: Vec<CexValue> },
    Unsat,
    Abort,
}

/// Result of recursively blocking an obligation cube.
enum Block {
    Blocked,
    /// Reached the initial state: per-step input assignments from the
    /// initial state to the obligation's anchor state, in trace order.
    Cex(Vec<Vec<CexValue>>),
    Abort,
}

struct Pdr<'n, 'c> {
    netlist: &'n Netlist,
    assertion: &'n Assertion,
    consts: &'n [(String, u32, u128)],
    cfg: ProveConfig,
    env: DesignTraceEnv<'n>,
    solver: Solver,
    em: CnfEmitter,
    /// Violation target of the attempt anchored at the symbolic state.
    bad: Lit,
    /// Anchor-state register bits (solver literals) and their next-state
    /// images one transition later, index-aligned.
    v0: Vec<Lit>,
    v1: Vec<Lit>,
    /// Reset value of each register bit.
    init: Vec<bool>,
    /// `act[0]` guards the initial-state units, `act[i]` the level-`i`
    /// clause group.
    act: Vec<Lit>,
    /// Cubes blocked at exactly level `i` (insertion order);
    /// `frames[0]` is unused.
    frames: Vec<Vec<Cube>>,
    deadline: Option<Instant>,
    cancel: Option<&'c AtomicBool>,
    sat_calls: u64,
    clauses_learned: u64,
    interrupted: bool,
}

impl<'n, 'c> Pdr<'n, 'c> {
    fn build(
        netlist: &'n Netlist,
        assertion: &'n Assertion,
        consts: &'n [(String, u32, u128)],
        cfg: ProveConfig,
        cancel: Option<&'c std::sync::Arc<AtomicBool>>,
    ) -> Result<Pdr<'n, 'c>, EncodeError> {
        let expander = FrameExpander::new(netlist)
            .map_err(|n| EncodeError::Unsupported(format!("combinational cycle through '{n}'")))?;
        let mut env = DesignTraceEnv::new(expander).with_free_initial_state();
        for (n, w, v) in consts {
            env.bind_const(n.clone(), *w, *v);
        }
        let mut g = Aig::new();
        let horizon = horizon_for(assertion, None, cfg.slack);
        let holds = encode_assertion_at(&mut g, assertion, 0, horizon, &mut env)?;
        env.ensure_frames(&mut g, 0);
        let mut solver = Solver::new();
        if let Some(token) = cancel {
            solver.set_interrupt(Some(std::sync::Arc::clone(token)));
        }
        solver.set_conflict_budget(Some(QUERY_CONFLICT_BUDGET));
        let mut em = CnfEmitter::new();
        let bad = em.emit(&g, !holds, &mut solver);
        // Emitting every state bit and its next-state image keeps the
        // full transition cone in the solver even where the monitor
        // cone does not reach it, and makes the bits model-readable.
        let (v0, init): (Vec<Lit>, Vec<bool>) = env
            .initial_state_bits()
            .iter()
            .map(|&(bit, iv)| (em.emit(&g, bit, &mut solver), iv))
            .unzip();
        let v1: Vec<Lit> = env
            .reg_next_bits(0)
            .iter()
            .map(|&bit| em.emit(&g, bit, &mut solver))
            .collect();
        let init_act = solver.new_selector();
        for (&l, &iv) in v0.iter().zip(&init) {
            solver.add_clause_selected(init_act, [if iv { l } else { !l }]);
        }
        let deadline = (cfg.prove_budget_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(cfg.prove_budget_ms));
        Ok(Pdr {
            netlist,
            assertion,
            consts,
            cfg,
            env,
            solver,
            em,
            bad,
            v0,
            v1,
            init,
            act: vec![init_act],
            frames: vec![Vec::new()],
            deadline,
            cancel: cancel.map(std::sync::Arc::as_ref),
            sat_calls: 0,
            clauses_learned: 0,
            interrupted: false,
        })
    }

    fn aborted(&mut self) -> bool {
        if self.cancel.is_some_and(|t| t.load(Ordering::Relaxed))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            self.interrupted = true;
        }
        self.interrupted
    }

    fn solve(&mut self, assumptions: &[Lit]) -> Query {
        if self.aborted() {
            return Query::Abort;
        }
        self.sat_calls += 1;
        match self.solver.solve_with(assumptions) {
            SolveResult::Sat => Query::Sat,
            SolveResult::Unsat => Query::Unsat,
            SolveResult::Interrupted => {
                self.interrupted = true;
                Query::Abort
            }
        }
    }

    /// Selector assumptions activating frame `i`: every level group
    /// from `i` up (a level-`j` clause holds in all `R_{≤j}`), plus the
    /// initial-state group exactly when `i == 0`.
    fn frame_assumptions(&self, i: usize) -> Vec<Lit> {
        self.act[i..].to_vec()
    }

    /// Does any `R_n` state anchor a violated attempt?
    fn bad_query(&mut self, n: usize) -> Query {
        let mut assumptions = self.frame_assumptions(n);
        assumptions.push(self.bad);
        self.solve(&assumptions)
    }

    /// Consecution: is `R_i ∧ ¬c ∧ T ∧ c'` satisfiable — can a state of
    /// `R_i` outside `c` step into `c`? The cube's negation is a
    /// one-query clause retired immediately after the call; on SAT the
    /// predecessor model is decoded before the retirement clause
    /// invalidates it.
    fn relative_query(&mut self, c: &Cube, i: usize) -> RelQuery {
        let tc = self.solver.new_selector();
        let not_c: Vec<Lit> = c
            .iter()
            .map(|&(j, b)| if b { !self.v0[j] } else { self.v0[j] })
            .collect();
        self.solver.add_clause_selected(tc, not_c);
        let mut assumptions = self.frame_assumptions(i);
        assumptions.push(tc);
        for &(j, b) in c {
            assumptions.push(if b { self.v1[j] } else { !self.v1[j] });
        }
        let res = match self.solve(&assumptions) {
            Query::Sat => RelQuery::Sat {
                pred: self.model_state(),
                step: self.model_step_inputs(0),
            },
            Query::Unsat => RelQuery::Unsat,
            Query::Abort => RelQuery::Abort,
        };
        // Retire the temporary selector so the clause can never
        // activate again (and the solver may garbage-collect it).
        self.solver.add_clause([!tc]);
        res
    }

    /// Decodes the model's anchor state into a full cube.
    fn model_state(&self) -> Cube {
        self.v0
            .iter()
            .enumerate()
            .map(|(j, &l)| (j, self.solver.lit_value_model(l).unwrap_or(false)))
            .collect()
    }

    fn is_init(&self, c: &Cube) -> bool {
        c.len() == self.init.len() && c.iter().all(|&(j, b)| b == self.init[j])
    }

    /// Decodes the model's frame-0 primary-input assignment (the
    /// stimuli of one transition) at trace cycle `cycle`.
    fn model_step_inputs(&self, cycle: i32) -> Vec<CexValue> {
        crate::cex::decode_trace(
            self.env
                .input_log()
                .iter()
                .filter(|(_, f, _)| *f == 0)
                .map(|(n, _, bv)| (n.as_str(), cycle, bv)),
            crate::cex::solver_bit_reader(&self.em, &self.solver),
        )
    }

    /// Decodes the model's inputs over the whole monitor cone, shifted
    /// so the attempt's anchor lands at trace cycle `anchor`.
    fn model_cone_inputs(&self, anchor: i32) -> Vec<CexValue> {
        crate::cex::decode_trace(
            self.env
                .input_log()
                .iter()
                .map(|(n, f, bv)| (n.as_str(), anchor + *f as i32, bv)),
            crate::cex::solver_bit_reader(&self.em, &self.solver),
        )
    }

    /// Blocks obligation cube `s` at level `j`, recursively blocking
    /// predecessors at `j - 1`. Obligations are handled depth-first in
    /// the deterministic order the solver models produce them.
    fn block(&mut self, s: &Cube, j: usize) -> Block {
        if self.is_init(s) {
            return Block::Cex(Vec::new());
        }
        debug_assert!(j >= 1, "non-initial obligations never reach level 0");
        loop {
            match self.relative_query(s, j - 1) {
                RelQuery::Unsat => {
                    let c = match self.generalize(s, j - 1) {
                        Some(c) => c,
                        None => return Block::Abort,
                    };
                    self.add_blocked(c, j);
                    return Block::Blocked;
                }
                RelQuery::Sat { pred, mut step } => match self.block(&pred, j - 1) {
                    Block::Cex(mut steps) => {
                        let cycle = steps.len() as i32;
                        for v in &mut step {
                            v.cycle = cycle;
                        }
                        steps.push(step);
                        return Block::Cex(steps);
                    }
                    Block::Blocked => continue,
                    Block::Abort => return Block::Abort,
                },
                RelQuery::Abort => return Block::Abort,
            }
        }
    }

    /// Relative-induction generalization: starting from a cube already
    /// inductive relative to `R_i`, drop literals in ascending bit
    /// order while the remainder stays inductive and still excludes the
    /// initial state. Returns `None` only on abort.
    fn generalize(&mut self, s: &Cube, i: usize) -> Option<Cube> {
        let mut cur = s.clone();
        for &(bit, _) in s {
            if cur.len() == 1 {
                break;
            }
            let cand: Cube = cur.iter().copied().filter(|&(j, _)| j != bit).collect();
            if cand.len() == cur.len() {
                continue; // already dropped by an earlier candidate
            }
            // The candidate must keep at least one literal refuting the
            // initial state (R_0 is the single reset state, so the
            // syntactic check is exact).
            if !cand.iter().any(|&(j, b)| b != self.init[j]) {
                continue;
            }
            match self.relative_query(&cand, i) {
                RelQuery::Unsat => cur = cand,
                RelQuery::Sat { .. } => {}
                RelQuery::Abort => return None,
            }
        }
        Some(cur)
    }

    /// Records cube `c` as blocked at `level`: one clause `¬c` guarded
    /// by `act[level]`, active in every frame query at or below that
    /// level.
    fn add_blocked(&mut self, c: Cube, level: usize) {
        let not_c: Vec<Lit> = c
            .iter()
            .map(|&(j, b)| if b { !self.v0[j] } else { self.v0[j] })
            .collect();
        self.solver.add_clause_selected(self.act[level], not_c);
        self.frames[level].push(c);
        self.clauses_learned += 1;
    }

    /// Opens the next frame level: a fresh selector and an empty cube
    /// list.
    fn open_level(&mut self) {
        let _span = fv_trace::span!("pdr.frame_push", level = self.act.len());
        let sel = self.solver.new_selector();
        self.act.push(sel);
        self.frames.push(Vec::new());
    }

    /// Pushes level-`i` cubes still inductive relative to `R_i` up to
    /// level `i + 1`. Returns `None` on abort, otherwise whether the
    /// level ended empty (fixpoint).
    fn propagate_level(&mut self, i: usize) -> Option<bool> {
        let cubes = std::mem::take(&mut self.frames[i]);
        let mut kept = Vec::new();
        let mut abort = false;
        for c in cubes {
            if abort {
                kept.push(c);
                continue;
            }
            match self.relative_query(&c, i) {
                RelQuery::Unsat => self.add_blocked(c, i + 1),
                RelQuery::Sat { .. } => kept.push(c),
                RelQuery::Abort => {
                    kept.push(c);
                    abort = true;
                }
            }
        }
        let empty = kept.is_empty();
        self.frames[i] = kept;
        if abort {
            None
        } else {
            Some(empty)
        }
    }

    fn undetermined(&self) -> Result<ProveResult, EncodeError> {
        Ok(ProveResult::Undetermined)
    }

    fn run(&mut self) -> Result<ProveResult, EncodeError> {
        // The shared monitor encoder clamps pre-anchor reads to the
        // anchor frame; that is only sound when the anchor is the
        // initial state, so PDR refuses such monitors.
        if self.env.saw_negative_read() {
            return self.undetermined();
        }
        // Base: an attempt anchored at the initial state itself.
        match self.bad_query(0) {
            Query::Sat => {
                let inputs = self.model_cone_inputs(0);
                return self.falsified(DesignCex { anchor: 0, inputs });
            }
            Query::Unsat => {}
            Query::Abort => return self.undetermined(),
        }
        self.open_level();
        loop {
            let n = self.act.len() - 1;
            match self.bad_query(n) {
                Query::Sat => {
                    let s = self.model_state();
                    let suffix = self.model_cone_inputs(0); // shifted below
                    match self.block(&s, n) {
                        Block::Blocked => continue,
                        Block::Cex(steps) => {
                            let anchor = steps.len() as u32;
                            let mut inputs: Vec<CexValue> = steps.into_iter().flatten().collect();
                            inputs.extend(suffix.into_iter().map(|mut v| {
                                v.cycle += anchor as i32;
                                v
                            }));
                            return self.falsified(DesignCex { anchor, inputs });
                        }
                        Block::Abort => return self.undetermined(),
                    }
                }
                Query::Unsat => {
                    if self.act.len() > MAX_FRAMES {
                        return self.undetermined();
                    }
                    self.open_level();
                    for i in 1..=n {
                        match self.propagate_level(i) {
                            Some(true) => return Ok(ProveResult::Proven { k: i as u32 }),
                            Some(false) => {}
                            None => return self.undetermined(),
                        }
                    }
                }
                Query::Abort => return self.undetermined(),
            }
        }
    }

    /// Gates every counterexample through the canonical replay check
    /// before reporting it; a trace that does not replay (which would
    /// indicate an engine bug) degrades to `Undetermined` instead of
    /// reporting an unsound falsification.
    fn falsified(&self, cex: DesignCex) -> Result<ProveResult, EncodeError> {
        let ok = replay_design_cex(self.netlist, self.assertion, self.consts, self.cfg, &cex)?;
        debug_assert!(ok, "PDR counterexample must replay in sv-synth::sim");
        if ok {
            Ok(ProveResult::Falsified { cex })
        } else {
            Ok(ProveResult::Undetermined)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::{prove, prove_with_stats};
    use sv_parser::{parse_assertion_str, parse_source};
    use sv_synth::elaborate;

    fn wrapping_counter() -> Netlist {
        let src = "module m (clk, reset_, en, q);\n\
            input clk; input reset_; input en;\n\
            output [2:0] q;\n\
            reg [2:0] cnt;\n\
            always @(posedge clk) begin\n\
            if (!reset_) cnt <= 3'd0;\n\
            else if (en) cnt <= (cnt == 3'd5) ? 3'd0 : cnt + 3'd1;\nend\n\
            assign q = cnt;\nendmodule\n";
        let f = parse_source(src).unwrap();
        elaborate(&f, "m").unwrap()
    }

    fn pdr_str(nl: &Netlist, a: &str) -> ProveResult {
        let a = parse_assertion_str(a).unwrap();
        prove_pdr(nl, &a, &[], ProveConfig::default()).unwrap().0
    }

    #[test]
    fn transition_relation_is_connected() {
        // The emitted v1 bits must be the successor functions of the
        // v0 state bits: from reset (cnt = 0), cnt' = 4 is impossible.
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd4);").unwrap();
        let mut e = Pdr::build(&nl, &a, &[], ProveConfig::default(), None).unwrap();
        let assm = vec![e.act[0], !e.v1[0], !e.v1[1], e.v1[2]];
        let r = e.solver.solve_with(&assm);
        assert!(r.is_unsat(), "transition should forbid init->4, got {r:?}");
    }

    #[test]
    fn proves_deep_invariant_bounded_cannot() {
        // `q != 7` is true (7 unreachable) but never k-inductive.
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        assert_eq!(
            prove(&nl, &a, &[], ProveConfig::default()).unwrap(),
            ProveResult::Undetermined,
            "bounded engine gives up"
        );
        let (r, stats) = prove_pdr(&nl, &a, &[], ProveConfig::default()).unwrap();
        assert!(r.is_proven(), "got {r:?}");
        assert!(stats.pdr_frames >= 1, "{stats:?}");
        assert!(stats.pdr_clauses_learned >= 1, "{stats:?}");
        assert_eq!(stats.pdr_wins, 1, "{stats:?}");
    }

    #[test]
    fn agrees_on_proven_falsified_undetermined() {
        let nl = wrapping_counter();
        for (src, expect_pdr_proven) in [
            ("assert property (@(posedge clk) en || !en);", true),
            ("assert property (@(posedge clk) q != 3'd5);", false),
            (
                "assert property (@(posedge clk) (en && q == 3'd1) |-> ##1 q == 3'd2);",
                true,
            ),
        ] {
            let a = parse_assertion_str(src).unwrap();
            let bounded = prove(&nl, &a, &[], ProveConfig::default()).unwrap();
            let via_pdr = pdr_str(&nl, src);
            match (&bounded, &via_pdr) {
                (ProveResult::Proven { .. }, ProveResult::Proven { .. }) => {
                    assert!(expect_pdr_proven, "{src}");
                }
                (ProveResult::Falsified { .. }, ProveResult::Falsified { .. }) => {
                    assert!(!expect_pdr_proven, "{src}");
                }
                (b, p) => panic!("{src}: bounded {b:?} vs pdr {p:?}"),
            }
        }
    }

    #[test]
    fn cex_replays_and_prints_canonically() {
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd4);").unwrap();
        let (r, _) = prove_pdr(&nl, &a, &[], ProveConfig::default()).unwrap();
        match r {
            ProveResult::Falsified { cex } => {
                assert!(cex.anchor >= 4, "needs four increments: {cex:?}");
                assert_eq!(
                    replay_design_cex(&nl, &a, &[], ProveConfig::default(), &cex),
                    Ok(true)
                );
                let shown = cex.to_string();
                assert!(shown.starts_with("violation of attempt anchored at cycle"));
            }
            other => panic!("expected falsified, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_and_past_monitors_are_undetermined() {
        let nl = wrapping_counter();
        let unb = pdr_str(
            &nl,
            "assert property (@(posedge clk) en |-> strong(##[0:$] q == 3'd5));",
        );
        assert_eq!(unb, ProveResult::Undetermined);
        // `$past` at the anchor reads a pre-anchor cycle: the clamp is
        // only sound for init-anchored engines, so PDR refuses.
        let past = pdr_str(
            &nl,
            "assert property (@(posedge clk) $past(q) == $past(q));",
        );
        assert_eq!(past, ProveResult::Undetermined);
    }

    #[test]
    fn cancel_token_aborts_promptly() {
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        let token = std::sync::Arc::new(AtomicBool::new(true));
        let mut stats = ProverStats::default();
        let out = run_pdr(
            &nl,
            &a,
            &[],
            ProveConfig::default(),
            Some(&token),
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.result, ProveResult::Undetermined);
        assert!(out.interrupted);
    }

    #[test]
    fn session_engine_pdr_matches_direct_entry() {
        let nl = wrapping_counter();
        let cfg = ProveConfig {
            engine: crate::prove::ProveEngine::Pdr,
            ..ProveConfig::default()
        };
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        let (r, stats) = prove_with_stats(&nl, &a, &[], cfg).unwrap();
        assert!(r.is_proven(), "got {r:?}");
        assert_eq!(stats.pdr_wins, 1, "{stats:?}");
        assert!(stats.pdr_clauses_learned >= 1, "{stats:?}");
    }
}
