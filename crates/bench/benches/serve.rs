//! The serving layer under the microscope: cold versus warm-store
//! evaluation at Table-4 scale, persistent-store load time at 10k
//! entries, request round-trip latency against a live server, and the
//! saturation behaviour of the sharded event loop under the seeded
//! load generator (`--shards 1` versus `--shards 4`).

use criterion::{criterion_group, criterion_main, Criterion};
use fveval_core::{machine_task_specs, EvalEngine, SampleEval, VerdictRecord};
use fveval_data::{generate_machine_cases, machine_signal_table, MachineGenConfig};
use fveval_llm::{profiles, Backend, InferenceConfig};
use fveval_serve::testutil::{run_load, LoadConfig, TempDir};
use fveval_serve::{Client, EvalRequest, Server, ServerConfig, TaskSetRef, VerdictStore};
use std::hint::black_box;
use std::time::Duration;

/// Cold vs warm-store Table-4-scale eval: 3 models x 60 machine cases
/// x 5 samples. The cold arm computes everything; the warm arm is
/// preloaded from a store built by an identical prior run, so every
/// lookup is a persisted hit and no inference or prover work happens.
fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    let cases = generate_machine_cases(MachineGenConfig {
        count: 60,
        seed: 0xBE7C,
        ..Default::default()
    });
    let tasks = machine_task_specs(&cases, &machine_signal_table());
    let models = profiles();
    let backends: Vec<&dyn Backend> = models[..3].iter().map(|m| m as &dyn Backend).collect();
    let cfg = InferenceConfig::sampling().with_shots(3);

    // One prior run fills the store the warm arm loads from.
    let tmp = TempDir::new("bench-warm");
    let seeder = EvalEngine::with_jobs(1);
    seeder.run_matrix(&backends, &tasks, &cfg, 5);
    let mut store = VerdictStore::open(tmp.path()).expect("store opens");
    store
        .append(&seeder.take_unpersisted())
        .expect("store writes");
    let records = store.records();
    assert_eq!(records.len(), 3 * 60 * 5);

    g.bench_function("table4_scale_cold", |b| {
        b.iter(|| {
            let engine = EvalEngine::with_jobs(1);
            black_box(engine.run_matrix(&backends, &tasks, &cfg, 5))
        })
    });
    g.bench_function("table4_scale_warm_store", |b| {
        b.iter(|| {
            let engine = EvalEngine::with_jobs(1);
            engine.load_verdicts(records.iter().cloned());
            let out = engine.run_matrix(&backends, &tasks, &cfg, 5);
            assert_eq!(engine.cache_stats().misses, 0, "fully served from store");
            black_box(out)
        })
    });
    g.finish();
}

/// Store load time at 10k entries: open + parse + index one compacted
/// 10k-record segment (the server's startup cost).
fn bench_store_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10).measurement_time(Duration::from_secs(10));

    let tmp = TempDir::new("bench-load");
    let records: Vec<VerdictRecord> = (0..10_000)
        .map(|i: u64| VerdictRecord {
            model: format!("model-{}", i % 8),
            task_id: format!("nl2sva_machine_{:04}", i % 300),
            digest: 0x9E3779B97F4A7C15u64.wrapping_mul(i + 1),
            cfg: format!("t3fe999999999999a_n{}_s0", i % 4),
            sample: (i / 2400) as u32,
            eval: SampleEval {
                syntax: true,
                func: i.is_multiple_of(3),
                partial: i.is_multiple_of(2),
                bleu: (i % 1000) as f64 / 1000.0,
            },
        })
        .collect();
    let mut store = VerdictStore::open(tmp.path()).expect("store opens");
    store.append(&records).expect("store writes");
    g.bench_function("store_load_10k_entries", |b| {
        b.iter(|| {
            let store = VerdictStore::open(tmp.path()).expect("store opens");
            assert_eq!(store.len(), 10_000);
            black_box(store)
        })
    });
    g.finish();
}

/// Request round-trip latency against a live server on the loopback:
/// the pure protocol cost (`/v1/stats`) and a full submit → poll →
/// result cycle for a warm-cached single-scenario job.
fn bench_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10).measurement_time(Duration::from_secs(10));

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_depth: 16,
        engine_jobs: 1,
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let client = Client::new(addr);

    g.bench_function("stats_round_trip", |b| {
        b.iter(|| black_box(client.stats().expect("stats answered")))
    });

    // Warm the engine once so the measured cycle is queue + wire + cache
    // lookups, not first-time formal work.
    let request = EvalRequest {
        tasks: TaskSetRef::Suite {
            families: vec!["gray".to_string()],
            per_family: 1,
            seed: 3,
            depth: None,
            width: None,
            mutations: 0,
        },
        models: vec!["gpt-4o".to_string()],
        cfg: InferenceConfig::greedy(),
        samples: 1,
    };
    let id = client.submit(&request).expect("submit");
    client
        .wait(id, Duration::from_secs(120))
        .expect("warmup completes");
    g.bench_function("submit_poll_result_warm", |b| {
        b.iter(|| {
            let id = client.submit(&request).expect("submit");
            let view = client
                .wait(id, Duration::from_secs(120))
                .expect("job completes");
            black_box(view)
        })
    });
    g.finish();

    client.shutdown().expect("shutdown");
    handle.join().unwrap().expect("clean exit");
}

/// Saturation throughput of the sharded event loop: the seeded load
/// generator fans 4 concurrent clients of mixed submit/long-poll/stats
/// traffic (no think time) at a 1-shard and a 4-shard server and
/// measures completed jobs per second. On a multicore host throughput
/// scales with the shard count for prover-bound traffic; on a single
/// hardware thread the arms collapse to the same number — the
/// byte-identity of the served tables is asserted either way, and the
/// per-arm p50/p99 latencies are printed for the CI log.
fn bench_saturation_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    let templates = vec![
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 4, seed: 21 },
            models: vec!["gpt-4o".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 4, seed: 22 },
            models: vec!["gemini-1.5-flash".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 4, seed: 23 },
            models: vec!["llama-3.1-70b".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 4, seed: 24 },
            models: vec!["gpt-4o".to_string(), "gemini-1.5-flash".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
    ];

    let mut digests: Vec<(usize, String)> = Vec::new();
    for shards in [1usize, 4] {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            queue_depth: 16,
            engine_jobs: 1,
            cache_dir: None,
            ..ServerConfig::default()
        })
        .expect("server binds");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        // One un-timed pass reports the latency profile and collects
        // the served bytes for the cross-shard identity check.
        let probe = run_load(
            &addr,
            &LoadConfig::saturating(0x10AD, 4, 2, templates.clone()),
        )
        .expect("probe load run");
        eprintln!(
            "[serve bench] shards={shards}: {:.2} jobs/s, p50={} ms, p99={} ms, \
             backpressure={}, progress_frames={}",
            probe.throughput_jobs_per_sec,
            probe.p50_latency_ms,
            probe.p99_latency_ms,
            probe.backpressure_hits,
            probe.progress_frames,
        );
        digests.push((shards, probe.results_digest()));
        g.bench_function(format!("saturation_shards_{shards}"), |b| {
            b.iter(|| {
                let cfg = LoadConfig::saturating(7, 4, 2, templates.clone());
                let report = run_load(&addr, &cfg).expect("load run");
                assert_eq!(report.completed, 8, "every job completed");
                black_box(report)
            })
        });
        Client::new(addr).shutdown().expect("shutdown");
        handle.join().unwrap().expect("clean exit");
    }
    let (_, ref one) = digests[0];
    let (_, ref four) = digests[1];
    assert_eq!(one, four, "shards 1 vs 4 serve byte-identical tables");
    g.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_warm,
    bench_store_load,
    bench_round_trip,
    bench_saturation_shards
);
criterion_main!(benches);
