//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this workspace
//! ships the small slice of `rand` the dataset generators actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms and fast, which is all the benchmark datasets require.
//! Streams do **not** match upstream `rand`; every dataset in this
//! repository is defined by *this* generator.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (wide(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width u128 inclusive range.
                    return lo + wide(rng) as $t;
                }
                lo + (wide(rng) % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add((wide(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u128 + 1;
                lo.wrapping_add((wide(rng) % span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

fn wide<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(c.gen::<u64>(), xs[0]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=3u128);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(0..5usize);
            assert!(z < 5);
            let s = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
