//! The unified evaluation engine: batched inference, a scoped-thread
//! worker pool, and verdict caching over one enumerable work-list.
//!
//! [`EvalEngine`] executes the `model × case × sample` product behind a
//! single API. Work is partitioned **case-major**: one group = one
//! case across every backend and sample, executed end to end by a
//! single worker thread. Within a group, all candidates stream through
//! one shared *proof session* (a [`fv_core::ProofSession`] over the
//! compiled design for Design2SVA, an [`fv_core::EquivSession`] over
//! the compiled reference for NL2SVA), so unrollings, monitor
//! encodings, and solver state amortize across samples *and* models —
//! and because a session never migrates across threads and candidate
//! order within a group is fixed, a parallel run produces
//! byte-identical results (and jobs-invariant prover counters) to a
//! sequential one.
//!
//! Two caches amortize repeated work across tables:
//!
//! - the **verdict cache**, keyed by `(model, task-id, content digest,
//!   cfg, sample)`, skips inference *and* formal scoring for cases
//!   shared between experiments (Tables 1/2 and Figure 6 all reuse
//!   the human set);
//! - the **compiled-design cache**, content-addressed by `(id, source
//!   digest)`, reuses each Design2SVA case's [`CompiledDesign`]
//!   (whole-file elaboration + DUT binding) across all backends,
//!   samples, and — when one engine serves many jobs — runs.

use crate::design2sva::{compile_design, CompiledDesign, Design2svaRunner, DesignSession};
use crate::metrics::{CaseEvals, SampleEval};
use crate::nl2sva::{Nl2svaRunner, NlSession};
use fv_core::{ProverStats, SignalTable};
use fveval_data::{DesignCase, HumanCase, MachineCase};
use fveval_llm::{Backend, InferenceConfig, Request, TaskSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How many timed checks the engine retains for the slow-check
/// report (the top N by wall time).
const SLOW_CHECKS_CAP: usize = 32;

/// One timed prover check (a scored cache-miss sample), retained for
/// the `results/slow_checks.md` side-channel report. Wall time is
/// nondeterministic, so these records never feed a byte-compared
/// table.
#[derive(Debug, Clone)]
pub struct SlowCheck {
    /// Case id the sample was scored against.
    pub id: String,
    /// Task shape: `nl2sva-human`, `nl2sva-machine`, or `design2sva`.
    pub kind: &'static str,
    /// OP-Tree mutation operator tag when the case is a derived
    /// mutant (PR 7's mutation layer); `None` otherwise.
    pub mutation: Option<String>,
    /// Scoring wall time in microseconds (parse + formal check).
    pub micros: u64,
}

/// Verdict-cache counters (monotonic over the engine's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Samples answered from verdicts computed by *this* engine.
    pub hits: u64,
    /// Samples answered from verdicts preloaded via
    /// [`EvalEngine::load_verdicts`] (a persistent store). Disjoint
    /// from `hits`; total cache hits are `hits + persisted_hits`.
    pub persisted_hits: u64,
    /// Samples that required inference + scoring.
    pub misses: u64,
    /// Verdicts currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from preloaded (persisted) verdicts,
    /// in `[0, 1]`; `0` when no lookups happened.
    pub fn persisted_hit_rate(&self) -> f64 {
        let total = self.hits + self.persisted_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.persisted_hits as f64 / total as f64
        }
    }

    /// Folds another engine's counters into this one. A sharded server
    /// runs one engine per shard; the aggregate view (and derived
    /// rates like [`CacheStats::persisted_hit_rate`]) is the merge of
    /// every shard's counters.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.persisted_hits += other.persisted_hits;
        self.misses += other.misses;
        self.entries += other.entries;
    }
}

/// One verdict in portable form: the full cache key plus the scored
/// sample. This is the unit a persistent verdict store (see the
/// `fveval-serve` crate) loads into an engine at startup and drains
/// back out after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRecord {
    /// Backend name (first key component).
    pub model: String,
    /// Task id.
    pub task_id: String,
    /// [`fveval_llm::TaskSpec::content_digest`] of the task.
    pub digest: u64,
    /// [`InferenceConfig::fingerprint`] of the inference config.
    pub cfg: String,
    /// Sample index within the task.
    pub sample: u32,
    /// The scored sample.
    pub eval: SampleEval,
}

impl VerdictRecord {
    fn key(&self) -> VerdictKey {
        (
            self.model.clone(),
            self.task_id.clone(),
            self.digest,
            self.cfg.clone(),
            self.sample,
        )
    }

    fn from_parts(key: &VerdictKey, eval: SampleEval) -> VerdictRecord {
        VerdictRecord {
            model: key.0.clone(),
            task_id: key.1.clone(),
            digest: key.2,
            cfg: key.3.clone(),
            sample: key.4,
            eval,
        }
    }
}

/// Cache key: `(model, task-id, content digest, cfg fingerprint,
/// sample)`. The digest guards against id collisions between
/// differently-seeded dataset generations (machine case ids are always
/// `nl2sva_machine_0000..` regardless of the generator seed).
type VerdictKey = (String, String, u64, String, u32);

/// Compiled-design cache key and value: `(design id, source digest)`
/// to the shared compile outcome. Content-addressing by digest keeps
/// same-id cases from differently-seeded generations apart.
type CompiledKey = (String, u64);
type SharedCompiled = Arc<Result<CompiledDesign, String>>;

/// One cached verdict plus where it came from: verdicts preloaded from
/// a persistent store count as `persisted_hits` and are never drained
/// back out by [`EvalEngine::take_unpersisted`].
#[derive(Debug, Clone, Copy)]
struct CachedVerdict {
    eval: SampleEval,
    persisted: bool,
}

#[derive(Debug, Default)]
struct VerdictCache {
    map: Mutex<HashMap<VerdictKey, CachedVerdict>>,
    /// Verdicts computed since the last [`VerdictCache::take_pending`],
    /// in insertion order — the flush queue for a persistent store.
    pending: Mutex<Vec<VerdictRecord>>,
    hits: AtomicU64,
    persisted_hits: AtomicU64,
    misses: AtomicU64,
}

impl VerdictCache {
    fn get(&self, key: &VerdictKey) -> Option<SampleEval> {
        let found = self
            .map
            .lock()
            .expect("verdict cache poisoned")
            .get(key)
            .copied();
        match found {
            Some(c) if c.persisted => self.persisted_hits.fetch_add(1, Ordering::Relaxed),
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found.map(|c| c.eval)
    }

    fn insert(&self, key: VerdictKey, eval: SampleEval) {
        self.pending
            .lock()
            .expect("verdict pending queue poisoned")
            .push(VerdictRecord::from_parts(&key, eval));
        self.map.lock().expect("verdict cache poisoned").insert(
            key,
            CachedVerdict {
                eval,
                persisted: false,
            },
        );
    }

    fn preload(&self, records: impl IntoIterator<Item = VerdictRecord>) -> usize {
        let mut map = self.map.lock().expect("verdict cache poisoned");
        let mut loaded = 0usize;
        for record in records {
            map.insert(
                record.key(),
                CachedVerdict {
                    eval: record.eval,
                    persisted: true,
                },
            );
            loaded += 1;
        }
        loaded
    }

    fn take_pending(&self) -> Vec<VerdictRecord> {
        let mut pending =
            std::mem::take(&mut *self.pending.lock().expect("verdict pending queue poisoned"));
        // Parallel workers race on insertion order; sort so the drain
        // (and therefore a store segment's contents) is deterministic.
        pending.sort_by_key(|record| record.key());
        pending
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            persisted_hits: self.persisted_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("verdict cache poisoned").len(),
        }
    }
}

/// The unified evaluation engine.
///
/// Construct one per experiment run (or share one across experiments to
/// pool the caches), hand it any [`Backend`] plus a task list built
/// with [`human_task_specs`] / [`machine_task_specs`] /
/// [`design_task_specs`], and collect per-case metrics.
///
/// # Examples
///
/// ```
/// use fveval_core::{machine_task_specs, EvalEngine, MetricSummary};
/// use fveval_data::{generate_machine_cases, machine_signal_table, MachineGenConfig};
/// use fveval_llm::{profiles, InferenceConfig};
///
/// let cases = generate_machine_cases(MachineGenConfig {
///     count: 10,
///     ..Default::default()
/// });
/// let tasks = machine_task_specs(&cases, &machine_signal_table());
/// let engine = EvalEngine::with_jobs(2);
/// let models = profiles();
/// let evals = engine.run(&models[0], &tasks, &InferenceConfig::greedy(), 1);
/// assert_eq!(evals.len(), 10);
/// let summary = MetricSummary::from_first_samples(&evals);
/// assert!(summary.syntax > 0.0);
/// ```
#[derive(Debug)]
pub struct EvalEngine {
    jobs: usize,
    nl2sva: Nl2svaRunner,
    d2s: Design2svaRunner,
    verdicts: VerdictCache,
    compiled: Mutex<HashMap<CompiledKey, SharedCompiled>>,
    /// Aggregate formal-core work counters, merged under one lock per
    /// scored sample (each of which just did parse + formal work, so
    /// this is nowhere near the hot path). Cache hits skip scoring, so
    /// only formal work actually performed is counted.
    prover: Mutex<ProverStats>,
    /// The slowest scored checks seen so far (bounded, sorted by wall
    /// time descending). Purely observational — see [`SlowCheck`].
    slow: Mutex<Vec<SlowCheck>>,
}

impl Default for EvalEngine {
    fn default() -> EvalEngine {
        EvalEngine::new()
    }
}

impl EvalEngine {
    /// Engine with one worker per available CPU.
    pub fn new() -> EvalEngine {
        EvalEngine::with_jobs(0)
    }

    /// Engine with a fixed worker count; `0` means "available
    /// parallelism" and `1` runs fully sequentially (no threads).
    pub fn with_jobs(jobs: usize) -> EvalEngine {
        EvalEngine {
            jobs: if jobs == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                jobs
            },
            nl2sva: Nl2svaRunner::new(),
            d2s: Design2svaRunner::new(),
            verdicts: VerdictCache::default(),
            compiled: Mutex::new(HashMap::new()),
            prover: Mutex::new(ProverStats::default()),
            slow: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the NL2SVA scoring runner (equivalence horizons).
    pub fn with_nl2sva_runner(mut self, runner: Nl2svaRunner) -> EvalEngine {
        self.nl2sva = runner;
        self
    }

    /// Overrides the Design2SVA scoring runner (prover bounds).
    pub fn with_d2s_runner(mut self, runner: Design2svaRunner) -> EvalEngine {
        self.d2s = runner;
        self
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Verdict-cache counters so callers can report hit rates.
    pub fn cache_stats(&self) -> CacheStats {
        self.verdicts.stats()
    }

    /// Preloads verdicts from a persistent store into the cache.
    /// Lookups they answer count as [`CacheStats::persisted_hits`],
    /// and they are never handed back by
    /// [`EvalEngine::take_unpersisted`]. Returns the number of records
    /// loaded. A record whose key is already cached is overwritten
    /// (last load wins), so load before running.
    pub fn load_verdicts(&self, records: impl IntoIterator<Item = VerdictRecord>) -> usize {
        self.verdicts.preload(records)
    }

    /// Drains every verdict computed (not preloaded) since the engine
    /// was built or this method last ran, sorted by cache key so the
    /// result is deterministic for any `jobs` setting. The caller —
    /// typically the `fveval-serve` crate's `VerdictStore`, via the
    /// server or the `fveval` CLI — appends these to disk so the next
    /// process starts warm.
    pub fn take_unpersisted(&self) -> Vec<VerdictRecord> {
        self.verdicts.take_pending()
    }

    /// Aggregate formal-core work counters over the engine's lifetime:
    /// how many prover queries were discharged by SAT, killed by random
    /// simulation, killed by ternary propagation, and how often a SAT
    /// call ran on a reused (already-warmed) solver. Verdict-cache hits
    /// skip scoring, so cached repeats add nothing here.
    pub fn prover_stats(&self) -> ProverStats {
        *self.prover.lock().expect("prover counters poisoned")
    }

    /// Folds formal-core work done *outside* the engine's own scoring
    /// into [`EvalEngine::prover_stats`] — e.g. a golden-verdict
    /// validation pass run next to an evaluation — so a command's
    /// stats surface accounts for every prover query the process
    /// actually discharged.
    pub fn record_prover_work(&self, stats: &ProverStats) {
        self.prover
            .lock()
            .expect("prover counters poisoned")
            .merge(stats);
    }

    /// The slowest scored checks so far (wall time descending, at most
    /// 32 entries). Cache hits skip scoring and never
    /// appear. Timing is nondeterministic: this feeds the
    /// `slow_checks.md` side-channel report only, never a
    /// byte-compared table.
    pub fn slow_checks(&self) -> Vec<SlowCheck> {
        self.slow.lock().expect("slow-check list poisoned").clone()
    }

    /// Records one scored sample's wall time into the bounded
    /// slowest-checks list.
    fn note_check_time(&self, task: &TaskSpec, micros: u64) {
        let mut slow = self.slow.lock().expect("slow-check list poisoned");
        if slow.len() >= SLOW_CHECKS_CAP && slow.last().is_some_and(|l| l.micros >= micros) {
            return;
        }
        let (kind, mutation) = match task {
            TaskSpec::Nl2svaHuman { case, .. } => ("nl2sva-human", case.mutation.clone()),
            TaskSpec::Nl2svaMachine { case, .. } => ("nl2sva-machine", case.mutation.clone()),
            TaskSpec::Design2sva { .. } => ("design2sva", None),
        };
        slow.push(SlowCheck {
            id: task.id().to_string(),
            kind,
            mutation,
            micros,
        });
        slow.sort_by(|a, b| b.micros.cmp(&a.micros).then_with(|| a.id.cmp(&b.id)));
        slow.truncate(SLOW_CHECKS_CAP);
    }

    /// Runs one backend over a task list with `n_samples` responses per
    /// case. Results are in task order, one [`CaseEvals`] per task, and
    /// are identical for any `jobs` setting.
    ///
    /// # Examples
    ///
    /// ```
    /// use fveval_core::{human_task_specs, EvalEngine};
    /// use fveval_data::{human_cases, signal_table_for, testbenches};
    /// use fveval_llm::{profiles, InferenceConfig};
    /// use std::collections::HashMap;
    ///
    /// let cases: Vec<_> = human_cases().into_iter().take(5).collect();
    /// let tables: HashMap<&str, _> = testbenches()
    ///     .iter()
    ///     .map(|tb| (tb.name, signal_table_for(tb).unwrap()))
    ///     .collect();
    /// let engine = EvalEngine::with_jobs(1);
    /// let models = profiles();
    /// let evals = engine.run(
    ///     &models[0],
    ///     &human_task_specs(&cases, &tables),
    ///     &InferenceConfig::greedy(),
    ///     2,
    /// );
    /// assert_eq!(evals.len(), 5);
    /// assert!(evals.iter().all(|c| c.samples.len() == 2));
    /// ```
    pub fn run(
        &self,
        backend: &dyn Backend,
        tasks: &[Arc<TaskSpec>],
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<CaseEvals> {
        self.run_matrix(&[backend], tasks, cfg, n_samples)
            .pop()
            .unwrap_or_default()
    }

    /// Runs the full `backends × tasks × samples` work-list through the
    /// worker pool. Returns one `Vec<CaseEvals>` per backend, in input
    /// order; `result[b][t]` holds backend `b`'s samples for task `t`.
    ///
    /// Work is partitioned case-major: one group per task, covering
    /// every backend and sample, executed by a single worker — so the
    /// per-case proof session never migrates across threads and the
    /// candidate stream order (backends in input order, samples
    /// ascending) is fixed for any `jobs` setting. Results *and*
    /// prover counters are therefore jobs-invariant. The tradeoff:
    /// effective parallelism is `min(jobs, tasks)`, so a work-list
    /// with fewer cases than workers leaves some idle — benchmark
    /// tables have dozens-to-hundreds of cases, where this never
    /// binds.
    pub fn run_matrix(
        &self,
        backends: &[&dyn Backend],
        tasks: &[Arc<TaskSpec>],
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<Vec<CaseEvals>> {
        self.run_matrix_with_progress(backends, tasks, cfg, n_samples, &|_, _| {})
    }

    /// [`EvalEngine::run_matrix`] with a completion callback: after
    /// each case group (one task across every backend and sample)
    /// finishes, `progress(done, total)` is invoked with the number of
    /// groups settled so far and the group total. The callback runs on
    /// worker threads and must be cheap and `Sync`; `done` is strictly
    /// increasing across calls (the counter is claimed atomically),
    /// though call *order* across threads is unspecified. Results are
    /// identical to `run_matrix` for any callback.
    pub fn run_matrix_with_progress(
        &self,
        backends: &[&dyn Backend],
        tasks: &[Arc<TaskSpec>],
        cfg: &InferenceConfig,
        n_samples: u32,
        progress: &(dyn Fn(usize, usize) + Sync),
    ) -> Vec<Vec<CaseEvals>> {
        let n_samples = n_samples.max(1);
        let total = backends.len() * tasks.len();
        if total == 0 {
            return backends.iter().map(|_| Vec::new()).collect();
        }
        let slots: Vec<OnceLock<CaseEvals>> = (0..total).map(|_| OnceLock::new()).collect();
        let done = AtomicUsize::new(0);
        let run_group = |t: usize| {
            let task = &tasks[t];
            let results = self.eval_group(backends, task, cfg, n_samples);
            for (b, evals) in results.into_iter().enumerate() {
                slots[b * tasks.len() + t]
                    .set(evals)
                    .expect("each work unit is claimed exactly once");
            }
            let settled = done.fetch_add(1, Ordering::AcqRel) + 1;
            progress(settled, tasks.len());
        };
        let workers = self.jobs.min(tasks.len());
        if workers <= 1 {
            (0..tasks.len()).for_each(run_group);
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let group = next.fetch_add(1, Ordering::Relaxed);
                        if group >= tasks.len() {
                            break;
                        }
                        run_group(group);
                    });
                }
            });
        }
        let mut slots = slots.into_iter();
        backends
            .iter()
            .map(|_| {
                (&mut slots)
                    .take(tasks.len())
                    .map(|s| s.into_inner().expect("all units completed"))
                    .collect()
            })
            .collect()
    }

    /// Evaluates one case group — every backend's samples for `task` —
    /// in two phases: (1) per backend, consult the verdict cache and
    /// batch the misses through [`Backend::generate_batch`]; (2) score
    /// every miss, in backend order then sample order, through one
    /// shared per-case session.
    fn eval_group(
        &self,
        backends: &[&dyn Backend],
        task: &Arc<TaskSpec>,
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<CaseEvals> {
        let _span = fv_trace::span!(
            "engine.case",
            task = task.id(),
            backends = backends.len(),
            samples = n_samples
        );
        let fingerprint = cfg.fingerprint();
        let digest = task.content_digest();
        let key = |backend: &dyn Backend, sample_idx: u32| -> VerdictKey {
            (
                backend.name().to_string(),
                task.id().to_string(),
                digest,
                fingerprint.clone(),
                sample_idx,
            )
        };
        // ---- Phase 1: cache lookups + inference for the misses. ----
        struct PreparedUnit {
            samples: Vec<Option<SampleEval>>,
            /// `(sample index, response)` pairs awaiting scoring.
            missing: Vec<(u32, String)>,
        }
        let mut prepared: Vec<PreparedUnit> = Vec::with_capacity(backends.len());
        for backend in backends {
            let mut samples: Vec<Option<SampleEval>> = (0..n_samples)
                .map(|i| self.verdicts.get(&key(*backend, i)))
                .collect();
            let missing_idx: Vec<u32> = (0..n_samples)
                .filter(|&i| samples[i as usize].is_none())
                .collect();
            let mut missing = Vec::new();
            if !missing_idx.is_empty() {
                // A design that fails to parse/elaborate scores every
                // sample as failed — resolve that before inference so
                // no (potentially paid, rate-limited) backend calls
                // are spent on responses that cannot be evaluated.
                let broken_design = match task.as_ref() {
                    TaskSpec::Design2sva { case } => self.compiled_design(case, digest).is_err(),
                    _ => false,
                };
                if broken_design {
                    for &sample_idx in &missing_idx {
                        let eval = SampleEval::failed();
                        self.verdicts.insert(key(*backend, sample_idx), eval);
                        samples[sample_idx as usize] = Some(eval);
                    }
                } else {
                    let reqs: Vec<Request> = missing_idx
                        .iter()
                        .map(|&sample_idx| Request {
                            task: Arc::clone(task),
                            cfg: *cfg,
                            sample_idx,
                        })
                        .collect();
                    let responses = backend.generate_batch(&reqs);
                    assert_eq!(
                        responses.len(),
                        reqs.len(),
                        "backend '{}' returned {} responses for {} requests",
                        backend.name(),
                        responses.len(),
                        reqs.len()
                    );
                    missing = missing_idx.into_iter().zip(responses).collect();
                }
            }
            prepared.push(PreparedUnit { samples, missing });
        }

        // ---- Phase 2: score the misses through one shared session. --
        if prepared.iter().any(|p| !p.missing.is_empty()) {
            // The compiled design (resolved from the content-addressed
            // cache) must outlive the session borrowing it.
            let compiled: Option<SharedCompiled> = match task.as_ref() {
                TaskSpec::Design2sva { case } => Some(self.compiled_design(case, digest)),
                _ => None,
            };
            let mut scorer = match task.as_ref() {
                TaskSpec::Design2sva { .. } => {
                    match compiled
                        .as_ref()
                        .expect("resolved for design tasks")
                        .as_ref()
                    {
                        Ok(design) => GroupScorer::Design(self.d2s.open_session(design)),
                        // Unreachable: phase 1 short-circuits broken
                        // designs, so nothing is missing here.
                        Err(_) => GroupScorer::Broken,
                    }
                }
                TaskSpec::Nl2svaHuman { case, table } => GroupScorer::Nl(
                    self.nl2sva.open_session(&case.reference, table),
                    &case.reference,
                ),
                TaskSpec::Nl2svaMachine { case, table } => GroupScorer::Nl(
                    self.nl2sva.open_session(&case.reference_text, table),
                    &case.reference_text,
                ),
            };
            for (backend, unit) in backends.iter().zip(&mut prepared) {
                for (sample_idx, response) in &unit.missing {
                    let started = std::time::Instant::now();
                    let eval = self.score_in_group(response, &mut scorer);
                    self.note_check_time(task, started.elapsed().as_micros() as u64);
                    self.verdicts.insert(key(*backend, *sample_idx), eval);
                    unit.samples[*sample_idx as usize] = Some(eval);
                }
            }
        }
        prepared
            .into_iter()
            .map(|unit| CaseEvals {
                id: task.id().to_string(),
                samples: unit
                    .samples
                    .into_iter()
                    .map(|s| s.expect("every sample resolved"))
                    .collect(),
            })
            .collect()
    }

    /// Scores one response through the group's shared session and
    /// merges the formal-work delta into the engine counters.
    fn score_in_group(&self, response: &str, scorer: &mut GroupScorer<'_>) -> SampleEval {
        let _span = fv_trace::span!("engine.score");
        let (eval, stats) = match scorer {
            GroupScorer::Design(session) => self.d2s.evaluate_in_session(session, response),
            GroupScorer::Nl(session, reference_text) => {
                self.nl2sva
                    .evaluate_in_session(session, reference_text, response)
            }
            GroupScorer::Broken => (SampleEval::failed(), ProverStats::default()),
        };
        self.prover
            .lock()
            .expect("prover counters poisoned")
            .merge(&stats);
        eval
    }

    /// Scores one response with the real evaluation pipeline (one-shot:
    /// a fresh session per call — the verdict is identical to the
    /// session-streamed path the engine runs use).
    pub fn score(&self, task: &TaskSpec, response: &str) -> SampleEval {
        let digest = task.content_digest();
        let (eval, stats) = match task {
            TaskSpec::Nl2svaHuman { case, table } => {
                self.nl2sva
                    .evaluate_response_stats(&case.reference, response, table)
            }
            TaskSpec::Nl2svaMachine { case, table } => {
                self.nl2sva
                    .evaluate_response_stats(&case.reference_text, response, table)
            }
            TaskSpec::Design2sva { case } => match self.compiled_design(case, digest).as_ref() {
                Ok(bound) => self.d2s.evaluate_response_stats(bound, response),
                Err(_) => (SampleEval::failed(), ProverStats::default()),
            },
        };
        self.prover
            .lock()
            .expect("prover counters poisoned")
            .merge(&stats);
        eval
    }

    /// Compiles a design once (whole-file elaboration + DUT binding)
    /// and shares it across every backend, sample, and job that scores
    /// against it. Content-addressed by `(id, source digest)` so
    /// same-id cases with different RTL never share a compile.
    fn compiled_design(&self, case: &DesignCase, digest: u64) -> SharedCompiled {
        let key = (case.id.clone(), digest);
        let cached = self
            .compiled
            .lock()
            .expect("compiled-design cache poisoned")
            .get(&key)
            .map(Arc::clone);
        if let Some(bound) = cached {
            // Compile-once observed: the digest-keyed cache served this
            // design without re-elaborating.
            self.prover
                .lock()
                .expect("prover counters poisoned")
                .digest_reuse += 1;
            return bound;
        }
        // Compile outside the lock: elaboration is the expensive part.
        // A racing worker may duplicate the work, but both produce the
        // same value and the first insert wins.
        let span = fv_trace::span!("engine.compile", design = case.id.as_str());
        let bound = Arc::new(compile_design(case));
        drop(span);
        Arc::clone(
            self.compiled
                .lock()
                .expect("compiled-design cache poisoned")
                .entry(key)
                .or_insert(bound),
        )
    }
}

/// The shared scoring state of one case group: every miss in the group
/// streams through the same session, in a deterministic order.
enum GroupScorer<'s> {
    /// Design2SVA: a shared [`fv_core::ProofSession`] over the
    /// compiled base netlist.
    Design(DesignSession<'s>),
    /// NL2SVA: a shared [`fv_core::EquivSession`] plus the reference
    /// text (for BLEU).
    Nl(NlSession<'s>, &'s str),
    /// Design collateral failed to compile (defensive; phase 1 fails
    /// such samples before scoring).
    Broken,
}

/// Builds the owned task list for the human set. `tables` maps
/// testbench names to signal scopes; each scope is `Arc`ed once and
/// shared by all of its cases.
pub fn human_task_specs(
    cases: &[HumanCase],
    tables: &HashMap<&str, SignalTable>,
) -> Vec<Arc<TaskSpec>> {
    let shared: HashMap<&str, Arc<SignalTable>> = tables
        .iter()
        .map(|(&name, table)| (name, Arc::new(table.clone())))
        .collect();
    cases
        .iter()
        .map(|case| {
            Arc::new(TaskSpec::Nl2svaHuman {
                case: case.clone(),
                table: Arc::clone(&shared[case.testbench.as_str()]),
            })
        })
        .collect()
}

/// Builds the combined task list for a generated scenario suite: every
/// candidate as an NL2SVA-Human-style and an NL2SVA-Machine-style task
/// (scored by equivalence in the scenario's own scope) plus one
/// Design2SVA task per scenario. Scenario ids prefix every case id, so
/// a generated work-list can share an engine with the shipped corpora
/// without cache collisions.
///
/// # Examples
///
/// ```
/// use fveval_core::{generated_task_specs, EvalEngine};
/// use fveval_data::{generated_task_set, SuiteConfig};
/// use fveval_llm::{profiles, InferenceConfig};
///
/// let set = generated_task_set(&SuiteConfig {
///     families: vec!["handshake".into()],
///     per_family: 1,
///     seed: 3,
///     ..Default::default()
/// })
/// .unwrap();
/// let tasks = generated_task_specs(&set);
/// // 5 candidates twice (human- and machine-style) + 1 design task.
/// assert_eq!(tasks.len(), 11);
/// let engine = EvalEngine::with_jobs(1);
/// let models = profiles();
/// let evals = engine.run(&models[0], &tasks, &InferenceConfig::greedy(), 1);
/// assert_eq!(evals.len(), tasks.len());
/// ```
pub fn generated_task_specs(set: &fveval_data::GeneratedTaskSet) -> Vec<Arc<TaskSpec>> {
    let shared: HashMap<&str, Arc<SignalTable>> = set
        .tables
        .iter()
        .map(|(name, table)| (name.as_str(), Arc::new(table.clone())))
        .collect();
    let mut tasks: Vec<Arc<TaskSpec>> =
        Vec::with_capacity(set.human.len() + set.machine.len() + set.designs.len());
    for case in &set.human {
        tasks.push(Arc::new(TaskSpec::Nl2svaHuman {
            case: case.clone(),
            table: Arc::clone(&shared[case.testbench.as_str()]),
        }));
    }
    for (scenario_id, case) in &set.machine {
        tasks.push(Arc::new(TaskSpec::Nl2svaMachine {
            case: case.clone(),
            table: Arc::clone(&shared[scenario_id.as_str()]),
        }));
    }
    tasks.extend(design_task_specs(&set.designs));
    tasks
}

/// Builds the owned task list for the machine set (one shared scope).
pub fn machine_task_specs(cases: &[MachineCase], table: &SignalTable) -> Vec<Arc<TaskSpec>> {
    let table = Arc::new(table.clone());
    cases
        .iter()
        .map(|case| {
            Arc::new(TaskSpec::Nl2svaMachine {
                case: case.clone(),
                table: Arc::clone(&table),
            })
        })
        .collect()
}

/// Builds the owned task list for a Design2SVA sweep.
pub fn design_task_specs(cases: &[DesignCase]) -> Vec<Arc<TaskSpec>> {
    cases
        .iter()
        .map(|case| Arc::new(TaskSpec::Design2sva { case: case.clone() }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fveval_data::{fsm_sweep, generate_machine_cases, machine_signal_table, MachineGenConfig};
    use fveval_llm::profiles;

    fn machine_tasks(count: usize) -> Vec<Arc<TaskSpec>> {
        let cases = generate_machine_cases(MachineGenConfig {
            count,
            ..Default::default()
        });
        machine_task_specs(&cases, &machine_signal_table())
    }

    #[test]
    fn parallel_matches_sequential() {
        let tasks = machine_tasks(24);
        let models = profiles();
        let backends: Vec<&dyn Backend> = models[..3].iter().map(|m| m as &dyn Backend).collect();
        let cfg = InferenceConfig::sampling();
        let seq = EvalEngine::with_jobs(1).run_matrix(&backends, &tasks, &cfg, 3);
        let par = EvalEngine::with_jobs(4).run_matrix(&backends, &tasks, &cfg, 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn verdict_cache_hits_on_repeat() {
        let tasks = machine_tasks(10);
        let models = profiles();
        let engine = EvalEngine::with_jobs(2);
        let cfg = InferenceConfig::greedy();
        let first = engine.run(&models[0], &tasks, &cfg, 1);
        let after_first = engine.cache_stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 10);
        assert_eq!(after_first.entries, 10);
        let second = engine.run(&models[0], &tasks, &cfg, 1);
        let after_second = engine.cache_stats();
        assert_eq!(after_second.hits, 10, "repeat run is fully cached");
        assert_eq!(after_second.misses, 10);
        assert_eq!(first, second);
    }

    #[test]
    fn cache_distinguishes_same_id_cases_from_different_generations() {
        // Machine case ids are nl2sva_machine_0000.. for *every*
        // generator seed; the content digest must keep their verdicts
        // apart when one engine is shared across datasets.
        let gen = |seed| {
            generate_machine_cases(MachineGenConfig {
                count: 8,
                seed,
                ..Default::default()
            })
        };
        let (a, b) = (gen(1), gen(2));
        assert_eq!(a[0].id, b[0].id, "ids collide by construction");
        assert_ne!(a[0].reference_text, b[0].reference_text);
        let table = machine_signal_table();
        let engine = EvalEngine::with_jobs(1);
        let models = profiles();
        let cfg = InferenceConfig::greedy();
        let ea = engine.run(&models[0], &machine_task_specs(&a, &table), &cfg, 1);
        let eb = engine.run(&models[0], &machine_task_specs(&b, &table), &cfg, 1);
        assert_eq!(engine.cache_stats().hits, 0, "no cross-dataset hits");
        // And each run matches a fresh, uncontaminated engine.
        let fresh =
            EvalEngine::with_jobs(1).run(&models[0], &machine_task_specs(&b, &table), &cfg, 1);
        assert_eq!(eb, fresh);
        assert_eq!(ea.len(), 8);
    }

    #[test]
    fn cache_distinguishes_configs_and_models() {
        let tasks = machine_tasks(5);
        let models = profiles();
        let engine = EvalEngine::with_jobs(1);
        engine.run(&models[0], &tasks, &InferenceConfig::greedy(), 1);
        engine.run(
            &models[0],
            &tasks,
            &InferenceConfig::greedy().with_shots(3),
            1,
        );
        engine.run(&models[1], &tasks, &InferenceConfig::greedy(), 1);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0, "different (model, cfg) keys never collide");
        assert_eq!(stats.entries, 15);
    }

    #[test]
    fn cache_distinguishes_same_cases_under_different_tables() {
        // The scope affects generation and scoring; a widened table
        // must not be served verdicts computed under the old one.
        let cases = generate_machine_cases(MachineGenConfig {
            count: 4,
            ..Default::default()
        });
        let table_a = machine_signal_table();
        let mut table_b = machine_signal_table();
        table_b.insert("extra_probe", 1);
        let engine = EvalEngine::with_jobs(1);
        let models = profiles();
        let cfg = InferenceConfig::greedy();
        engine.run(&models[0], &machine_task_specs(&cases, &table_a), &cfg, 1);
        engine.run(&models[0], &machine_task_specs(&cases, &table_b), &cfg, 1);
        assert_eq!(
            engine.cache_stats().hits,
            0,
            "table change misses the cache"
        );
        assert_eq!(engine.cache_stats().entries, 8);
    }

    #[test]
    fn unbindable_design_skips_inference() {
        use std::sync::atomic::{AtomicU32, Ordering};
        struct Counting(AtomicU32);
        impl Backend for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn generate(&self, _req: &Request) -> String {
                self.0.fetch_add(1, Ordering::Relaxed);
                "assert property (@(posedge clk) 1'b1);".into()
            }
        }
        let mut broken = fsm_sweep(1, 9)[0].clone();
        broken.design_source = "module garbage (syntax error".into();
        let tasks = design_task_specs(&[broken]);
        let backend = Counting(AtomicU32::new(0));
        let engine = EvalEngine::with_jobs(1);
        let evals = engine.run(&backend, &tasks, &InferenceConfig::sampling(), 4);
        assert_eq!(
            backend.0.load(Ordering::Relaxed),
            0,
            "no wasted model calls"
        );
        assert!(evals[0].samples.iter().all(|s| !s.syntax));
        // The failure verdicts are cached like any other.
        engine.run(&backend, &tasks, &InferenceConfig::sampling(), 4);
        assert_eq!(engine.cache_stats().hits, 4);
    }

    #[test]
    fn design_bind_cache_is_shared_across_backends() {
        let cases = fsm_sweep(2, 5);
        let tasks = design_task_specs(&cases);
        let models = profiles();
        let backends: Vec<&dyn Backend> = models
            .iter()
            .filter(|m| m.profile().supports_design2sva)
            .take(2)
            .map(|m| m as &dyn Backend)
            .collect();
        let engine = EvalEngine::with_jobs(3);
        let out = engine.run_matrix(&backends, &tasks, &InferenceConfig::sampling(), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 2);
        // One bind per case, reused by both backends.
        assert_eq!(engine.compiled.lock().unwrap().len(), 2);
    }

    #[test]
    fn prover_stats_accumulate_and_cached_repeats_add_nothing() {
        let tasks = machine_tasks(8);
        let models = profiles();
        let engine = EvalEngine::with_jobs(2);
        let cfg = InferenceConfig::greedy();
        engine.run(&models[0], &tasks, &cfg, 1);
        let first = engine.prover_stats();
        assert!(
            first.queries() > 0,
            "scoring 8 cases must reach the prover: {first:?}"
        );
        engine.run(&models[0], &tasks, &cfg, 1); // answered from cache
        assert_eq!(
            engine.prover_stats(),
            first,
            "verdict-cache hits skip formal work"
        );
    }

    #[test]
    fn matrix_rows_match_single_runs() {
        let tasks = machine_tasks(12);
        let models = profiles();
        let backends: Vec<&dyn Backend> = models[..2].iter().map(|m| m as &dyn Backend).collect();
        let cfg = InferenceConfig::greedy();
        let matrix = EvalEngine::with_jobs(4).run_matrix(&backends, &tasks, &cfg, 1);
        for (backend, row) in backends.iter().zip(&matrix) {
            let single = EvalEngine::with_jobs(1).run(*backend, &tasks, &cfg, 1);
            assert_eq!(row, &single);
        }
    }

    #[test]
    fn preloaded_verdicts_serve_as_persisted_hits() {
        let tasks = machine_tasks(10);
        let models = profiles();
        let cfg = InferenceConfig::greedy();
        // A cold engine computes every verdict and hands them all back.
        let cold = EvalEngine::with_jobs(2);
        let cold_out = cold.run(&models[0], &tasks, &cfg, 1);
        let records = cold.take_unpersisted();
        assert_eq!(records.len(), 10);
        assert!(
            cold.take_unpersisted().is_empty(),
            "drain is destructive; nothing new was computed since"
        );
        // A warm engine preloaded with those records answers the same
        // run entirely from persisted verdicts: no inference, no
        // prover work, byte-identical output.
        let warm = EvalEngine::with_jobs(2);
        assert_eq!(warm.load_verdicts(records), 10);
        let warm_out = warm.run(&models[0], &tasks, &cfg, 1);
        assert_eq!(warm_out, cold_out);
        let stats = warm.cache_stats();
        assert_eq!(stats.persisted_hits, 10);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert!((stats.persisted_hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(warm.prover_stats().queries(), 0, "no formal work");
        assert!(
            warm.take_unpersisted().is_empty(),
            "preloaded verdicts are never drained back out"
        );
    }

    #[test]
    fn take_unpersisted_is_sorted_and_jobs_invariant() {
        let tasks = machine_tasks(16);
        let models = profiles();
        let cfg = InferenceConfig::sampling();
        let drain = |jobs| {
            let engine = EvalEngine::with_jobs(jobs);
            engine.run(&models[1], &tasks, &cfg, 2);
            engine.take_unpersisted()
        };
        let seq = drain(1);
        let par = drain(4);
        assert_eq!(seq.len(), 32);
        assert_eq!(seq, par, "drain order is deterministic");
        let mut sorted = seq.clone();
        sorted.sort_by_key(|record| record.key());
        assert_eq!(seq, sorted);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let engine = EvalEngine::new();
        let models = profiles();
        let out = engine.run(&models[0], &[], &InferenceConfig::greedy(), 1);
        assert!(out.is_empty());
        let none: Vec<Vec<CaseEvals>> =
            engine.run_matrix(&[], &machine_tasks(2), &InferenceConfig::greedy(), 1);
        assert!(none.is_empty());
    }
}
