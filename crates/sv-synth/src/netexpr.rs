//! The word-level netlist expression IR.
//!
//! Expressions are width-annotated and already desugared from the
//! source AST: logical operators are boolean reductions, comparisons are
//! explicit, and every identifier has been resolved to an atom slice.

use crate::netlist::AtomId;

/// Binary operators at the netlist level. All are unsigned;
/// results wrap at the node width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NxBin {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x/0 = all ones).
    Div,
    /// Unsigned remainder (x%0 = x).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (variable amount).
    Shl,
    /// Logical right shift.
    LShr,
    /// Arithmetic right shift.
    AShr,
    /// Equality; 1-bit result.
    Eq,
    /// Unsigned less-than; 1-bit result.
    Ult,
    /// Unsigned less-or-equal; 1-bit result.
    Ule,
}

impl NxBin {
    /// `true` if the result is a single bit regardless of operand width.
    pub fn is_predicate(self) -> bool {
        matches!(self, NxBin::Eq | NxBin::Ult | NxBin::Ule)
    }
}

/// Reduction operators (N bits to 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NxRed {
    /// All bits set.
    And,
    /// Any bit set.
    Or,
    /// Parity.
    Xor,
}

/// A width-annotated netlist expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Nx {
    /// Constant of the given width.
    Const {
        /// Width in bits (1..=128).
        width: u32,
        /// Value, already masked to `width`.
        value: u128,
    },
    /// Full read of an atom.
    Atom(AtomId),
    /// Static bit range `[lo, lo+width)` of the inner expression.
    Slice {
        /// Source expression.
        inner: Box<Nx>,
        /// LSB offset.
        lo: u32,
        /// Result width.
        width: u32,
    },
    /// Dynamic element select: `inner[(index * elem_width) +: elem_width]`.
    DynSlice {
        /// Source expression.
        inner: Box<Nx>,
        /// Element index (unsigned).
        index: Box<Nx>,
        /// Element width.
        elem_width: u32,
    },
    /// Concatenation, LSB-first parts.
    Concat(Vec<Nx>),
    /// Bitwise complement.
    Not(Box<Nx>),
    /// Two's-complement negation.
    Neg(Box<Nx>),
    /// Binary operation on width-matched operands.
    Bin {
        /// Operator.
        op: NxBin,
        /// Left operand.
        a: Box<Nx>,
        /// Right operand (for shifts: self-determined width).
        b: Box<Nx>,
    },
    /// Reduction to one bit.
    Reduce {
        /// Reduction kind.
        op: NxRed,
        /// Operand.
        inner: Box<Nx>,
    },
    /// 2:1 word multiplexer; `sel` is 1 bit wide.
    Mux {
        /// Select.
        sel: Box<Nx>,
        /// Value when `sel` is 1.
        t: Box<Nx>,
        /// Value when `sel` is 0.
        e: Box<Nx>,
    },
    /// Population count, result width fixed by the node.
    Countones {
        /// Operand.
        inner: Box<Nx>,
        /// Result width.
        width: u32,
    },
    /// `$onehot` (1-bit result).
    Onehot(Box<Nx>),
    /// `$onehot0` (1-bit result).
    Onehot0(Box<Nx>),
    /// Zero-extension or truncation to an explicit width.
    Resize {
        /// Operand.
        inner: Box<Nx>,
        /// New width.
        width: u32,
    },
}

impl Nx {
    /// Constant node, masking the value to `width`.
    pub fn constant(width: u32, value: u128) -> Nx {
        Nx::Const {
            width,
            value: mask(value, width),
        }
    }

    /// One-bit boolean constant.
    pub fn bit(b: bool) -> Nx {
        Nx::constant(1, u128::from(b))
    }

    /// The width of this expression, given atom widths.
    pub fn width(&self, atom_width: &impl Fn(AtomId) -> u32) -> u32 {
        match self {
            Nx::Const { width, .. } => *width,
            Nx::Atom(a) => atom_width(*a),
            Nx::Slice { width, .. } => *width,
            Nx::DynSlice { elem_width, .. } => *elem_width,
            Nx::Concat(parts) => parts.iter().map(|p| p.width(atom_width)).sum(),
            Nx::Not(i) | Nx::Neg(i) => i.width(atom_width),
            Nx::Bin { op, a, .. } => {
                if op.is_predicate() {
                    1
                } else {
                    a.width(atom_width)
                }
            }
            Nx::Reduce { .. } | Nx::Onehot(_) | Nx::Onehot0(_) => 1,
            Nx::Mux { t, .. } => t.width(atom_width),
            Nx::Countones { width, .. } => *width,
            Nx::Resize { width, .. } => *width,
        }
    }

    /// Visits all atoms read by this expression.
    pub fn visit_atoms(&self, f: &mut impl FnMut(AtomId)) {
        match self {
            Nx::Const { .. } => {}
            Nx::Atom(a) => f(*a),
            Nx::Slice { inner, .. }
            | Nx::Not(inner)
            | Nx::Neg(inner)
            | Nx::Reduce { inner, .. }
            | Nx::Countones { inner, .. }
            | Nx::Onehot(inner)
            | Nx::Onehot0(inner)
            | Nx::Resize { inner, .. } => inner.visit_atoms(f),
            Nx::DynSlice { inner, index, .. } => {
                inner.visit_atoms(f);
                index.visit_atoms(f);
            }
            Nx::Concat(parts) => {
                for p in parts {
                    p.visit_atoms(f);
                }
            }
            Nx::Bin { a, b, .. } => {
                a.visit_atoms(f);
                b.visit_atoms(f);
            }
            Nx::Mux { sel, t, e } => {
                sel.visit_atoms(f);
                t.visit_atoms(f);
                e.visit_atoms(f);
            }
        }
    }
}

/// Masks a value to `width` bits.
pub(crate) fn mask(value: u128, width: u32) -> u128 {
    if width >= 128 {
        value
    } else {
        value & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_masks() {
        assert_eq!(
            Nx::constant(4, 0xFF),
            Nx::Const {
                width: 4,
                value: 0xF
            }
        );
    }

    #[test]
    fn widths() {
        let w = |_: AtomId| 8u32;
        let c = Nx::constant(8, 1);
        assert_eq!(c.width(&w), 8);
        let cmp = Nx::Bin {
            op: NxBin::Eq,
            a: Box::new(c.clone()),
            b: Box::new(Nx::constant(8, 2)),
        };
        assert_eq!(cmp.width(&w), 1);
        let cat = Nx::Concat(vec![c.clone(), c]);
        assert_eq!(cat.width(&w), 16);
    }

    #[test]
    fn atom_visitor() {
        let e = Nx::Bin {
            op: NxBin::Add,
            a: Box::new(Nx::Atom(AtomId(0))),
            b: Box::new(Nx::Mux {
                sel: Box::new(Nx::Atom(AtomId(1))),
                t: Box::new(Nx::Atom(AtomId(2))),
                e: Box::new(Nx::constant(8, 0)),
            }),
        };
        let mut seen = Vec::new();
        e.visit_atoms(&mut |a| seen.push(a.0));
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
