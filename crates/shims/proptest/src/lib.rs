//! Offline, dependency-free subset of the `proptest` framework.
//!
//! The build environment has no registry access, so this workspace
//! ships the slice of proptest the property suite uses: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive`, range and
//! tuple strategies, [`Just`], `prop_oneof!`, the `proptest!` test
//! macro, `prop_assert*!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and case index instead), and value streams are specific to this
//! shim's deterministic RNG.

use std::fmt;
use std::sync::Arc;

/// Deterministic generator driving all value production. Seeded from
/// the test's module path and name plus the case index, so runs are
/// reproducible and independent of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_parts(test_name: &str, case_idx: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ (u64::from(case_idx).wrapping_mul(0x9E3779B97F4A7C15)).max(1),
        }
    }

    /// Next 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a boxed strategy
    /// for the inner levels and returns the strategy for one level up.
    /// Recursion is expanded `depth` times; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = BoxedStrategy::new(self);
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated depths
            // vary instead of always hitting the maximum.
            strat = BoxedStrategy::new(Union {
                arms: vec![leaf.clone(), BoxedStrategy::new(recurse(strat))],
            });
        }
        strat
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Erases a concrete strategy.
    pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
        BoxedStrategy { inner: Arc::new(s) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy producing a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from erased arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.arms[rng.below(self.arms.len())].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (((u128::from(rng.next_u64()) << 64
                    | u128::from(rng.next_u64())) % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi - lo) as u128).wrapping_add(1);
                if span == 0 {
                    return lo + ((u128::from(rng.next_u64()) << 64
                        | u128::from(rng.next_u64())) as $t);
                }
                lo + (((u128::from(rng.next_u64()) << 64
                    | u128::from(rng.next_u64())) % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A failed property check (no shrinking in this shim).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::BoxedStrategy::new($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests. Accepts an optional leading
/// `#![proptest_config(..)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. The attribute repetition
/// absorbs doc comments and the `#[test]` marker; the expansion emits
/// its own `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$_meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case_idx in 0..config.cases {
                let mut __rng = $crate::TestRng::from_parts(test_path, case_idx);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("{test_path}: case {case_idx}/{} failed: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_parts("ranges", 0);
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0u128..2).generate(&mut rng);
            assert!(y < 2);
        }
    }

    #[test]
    fn union_map_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_parts("trees", 1);
        let mut max_depth = 0;
        for _ in 0..100 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion reached at least one level");
        assert!(max_depth <= 3, "depth bounded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: early `return Ok(())`, assertions, multiple args.
        #[test]
        fn macro_smoke(a in 0u64..100, b in 1u32..=4) {
            if a == 99 {
                return Ok(());
            }
            prop_assert!(a < 99, "a={a}");
            prop_assert_eq!(b as u64 * a / a.max(1), b as u64 * a / a.max(1));
            prop_assert_ne!(b, 0);
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }
}
