//! Parser for SVA properties, sequences, and assertion statements.
//!
//! SVA's grammar overloads parentheses between boolean expressions,
//! sequences, and properties. The parser resolves this with bounded
//! backtracking: a parenthesized form is first attempted as a plain
//! expression; on failure it is re-parsed as a property.

use crate::lexer::{Kw, Punct, Tok};
use crate::parser::{parse_expr, Cursor};
use crate::ParseError;
use sv_ast::{Assertion, ClockSpec, DelayBound, PropExpr, SeqExpr};

/// Intermediate result: a construct not yet committed to the sequence or
/// property level.
#[derive(Debug, Clone)]
enum Ps {
    Seq(SeqExpr),
    Prop(PropExpr),
}

impl Ps {
    fn into_prop(self) -> PropExpr {
        match self {
            Ps::Seq(s) => PropExpr::Seq(s),
            Ps::Prop(p) => p,
        }
    }

    fn into_seq(self, cur: &Cursor) -> Result<SeqExpr, ParseError> {
        match self {
            Ps::Seq(s) => Ok(s),
            Ps::Prop(_) => Err(cur.err("sequence expression required, found property operator")),
        }
    }
}

/// Parses a property expression (used inside `assert property (...)`).
pub fn parse_property(cur: &mut Cursor) -> Result<PropExpr, ParseError> {
    Ok(parse_ps_top(cur)?.into_prop())
}

fn parse_ps_top(cur: &mut Cursor) -> Result<Ps, ParseError> {
    let lhs = parse_ps_until(cur)?;
    let non_overlap = if cur.at_punct(Punct::OverlapImpl) {
        false
    } else if cur.at_punct(Punct::NonOverlapImpl) {
        true
    } else {
        return Ok(lhs);
    };
    cur.bump();
    let ante = lhs.into_seq(cur)?;
    let cons = parse_ps_top(cur)?.into_prop();
    Ok(Ps::Prop(PropExpr::Implication {
        ante,
        non_overlap,
        cons: Box::new(cons),
    }))
}

fn parse_ps_until(cur: &mut Cursor) -> Result<Ps, ParseError> {
    let lhs = parse_ps_or(cur)?;
    let strong = if cur.at_kw(Kw::Until) {
        false
    } else if cur.at_kw(Kw::SUntil) {
        true
    } else {
        return Ok(lhs);
    };
    cur.bump();
    let rhs = parse_ps_until(cur)?;
    Ok(Ps::Prop(PropExpr::Until {
        strong,
        lhs: Box::new(lhs.into_prop()),
        rhs: Box::new(rhs.into_prop()),
    }))
}

fn parse_ps_or(cur: &mut Cursor) -> Result<Ps, ParseError> {
    let mut lhs = parse_ps_and(cur)?;
    while cur.eat_kw(Kw::Or) {
        let rhs = parse_ps_and(cur)?;
        lhs = combine(lhs, rhs, true);
    }
    Ok(lhs)
}

fn parse_ps_and(cur: &mut Cursor) -> Result<Ps, ParseError> {
    let mut lhs = parse_ps_seq(cur)?;
    while cur.eat_kw(Kw::And) {
        let rhs = parse_ps_seq(cur)?;
        lhs = combine(lhs, rhs, false);
    }
    Ok(lhs)
}

fn combine(a: Ps, b: Ps, is_or: bool) -> Ps {
    match (a, b) {
        (Ps::Seq(x), Ps::Seq(y)) => Ps::Seq(if is_or {
            SeqExpr::Or(Box::new(x), Box::new(y))
        } else {
            SeqExpr::And(Box::new(x), Box::new(y))
        }),
        (a, b) => {
            let (x, y) = (a.into_prop(), b.into_prop());
            Ps::Prop(if is_or {
                PropExpr::Or(Box::new(x), Box::new(y))
            } else {
                PropExpr::And(Box::new(x), Box::new(y))
            })
        }
    }
}

/// Parses `##` delay bounds after the `##` token has been consumed.
fn parse_delay_bounds(cur: &mut Cursor) -> Result<(u32, DelayBound), ParseError> {
    if cur.eat_punct(Punct::LBracket) {
        let lo = expect_small_number(cur, "delay lower bound")?;
        cur.expect_punct(Punct::Colon, "':' in delay range")?;
        let hi = if cur.eat_punct(Punct::Dollar) {
            DelayBound::Unbounded
        } else {
            DelayBound::Finite(expect_small_number(cur, "delay upper bound")?)
        };
        cur.expect_punct(Punct::RBracket, "']' of delay range")?;
        if let DelayBound::Finite(h) = hi {
            if h < lo {
                return Err(cur.err("delay range upper bound below lower bound"));
            }
        }
        Ok((lo, hi))
    } else {
        let n = expect_small_number(cur, "delay value")?;
        Ok((n, DelayBound::Finite(n)))
    }
}

fn expect_small_number(cur: &mut Cursor, what: &str) -> Result<u32, ParseError> {
    match cur.peek().clone() {
        Tok::Number { value, .. } => {
            cur.bump();
            u32::try_from(value).map_err(|_| cur.err(format!("{what} too large")))
        }
        other => Err(cur.err(format!("expected {what}, found {other:?}"))),
    }
}

fn parse_ps_seq(cur: &mut Cursor) -> Result<Ps, ParseError> {
    // Leading delay: `##N seq`.
    let mut seq: SeqExpr;
    if cur.eat_punct(Punct::DoubleHash) {
        let (lo, hi) = parse_delay_bounds(cur)?;
        let rhs = parse_ps_unary(cur)?.into_seq(cur)?;
        seq = SeqExpr::Delay {
            lhs: None,
            lo,
            hi,
            rhs: Box::new(rhs),
        };
    } else {
        let first = parse_ps_unary(cur)?;
        // `expr throughout seq`
        if cur.at_kw(Kw::Throughout) {
            cur.bump();
            let guard = match first.into_seq(cur)? {
                SeqExpr::Expr(e) => e,
                _ => return Err(cur.err("left of 'throughout' must be a boolean expression")),
            };
            let body = parse_ps_seq(cur)?.into_seq(cur)?;
            return Ok(Ps::Seq(SeqExpr::Throughout(guard, Box::new(body))));
        }
        if !cur.at_punct(Punct::DoubleHash) {
            return Ok(first);
        }
        seq = first.into_seq(cur)?;
    }
    while cur.eat_punct(Punct::DoubleHash) {
        let (lo, hi) = parse_delay_bounds(cur)?;
        let rhs = parse_ps_unary(cur)?.into_seq(cur)?;
        seq = SeqExpr::Delay {
            lhs: Some(Box::new(seq)),
            lo,
            hi,
            rhs: Box::new(rhs),
        };
    }
    Ok(Ps::Seq(seq))
}

fn parse_ps_unary(cur: &mut Cursor) -> Result<Ps, ParseError> {
    if cur.eat_kw(Kw::Not) {
        let inner = parse_ps_unary(cur)?.into_prop();
        return Ok(Ps::Prop(PropExpr::Not(Box::new(inner))));
    }
    if cur.eat_kw(Kw::SEventually) {
        let inner = parse_ps_unary(cur)?.into_prop();
        return Ok(Ps::Prop(PropExpr::SEventually(Box::new(inner))));
    }
    if cur.eat_kw(Kw::Nexttime) {
        let inner = parse_ps_unary(cur)?.into_prop();
        return Ok(Ps::Prop(PropExpr::Nexttime(Box::new(inner))));
    }
    if cur.at_kw(Kw::Always) {
        cur.bump();
        let inner = parse_ps_unary(cur)?.into_prop();
        return Ok(Ps::Prop(PropExpr::Always(Box::new(inner))));
    }
    if cur.at_kw(Kw::Strong) || cur.at_kw(Kw::Weak) {
        let strong = cur.at_kw(Kw::Strong);
        cur.bump();
        cur.expect_punct(Punct::LParen, "'(' after strong/weak")?;
        let seq = parse_ps_top(cur)?.into_seq(cur)?;
        cur.expect_punct(Punct::RParen, "')' of strong/weak")?;
        return Ok(Ps::Prop(if strong {
            PropExpr::Strong(seq)
        } else {
            PropExpr::Weak(seq)
        }));
    }
    if cur.at_kw(Kw::If) {
        cur.bump();
        cur.expect_punct(Punct::LParen, "'(' after property if")?;
        let cond = parse_expr(cur)?;
        cur.expect_punct(Punct::RParen, "')' of property if")?;
        let then = parse_ps_unary(cur)?.into_prop();
        let alt = if cur.eat_kw(Kw::Else) {
            Some(Box::new(parse_ps_unary(cur)?.into_prop()))
        } else {
            None
        };
        return Ok(Ps::Prop(PropExpr::IfElse {
            cond,
            then: Box::new(then),
            alt,
        }));
    }
    parse_ps_primary(cur)
}

fn parse_ps_primary(cur: &mut Cursor) -> Result<Ps, ParseError> {
    // First try a plain boolean expression (handles its own parens and
    // stops at sequence/property operators).
    let save = cur.save();
    match parse_expr(cur) {
        Ok(e) => {
            let seq = parse_repeat_suffix(cur, SeqExpr::Expr(e))?;
            Ok(Ps::Seq(seq))
        }
        Err(expr_err) => {
            cur.restore(save);
            if cur.eat_punct(Punct::LParen) {
                let inner = parse_ps_top(cur)?;
                cur.expect_punct(Punct::RParen, "')'")?;
                match inner {
                    Ps::Seq(s) => {
                        let s = parse_repeat_suffix(cur, s)?;
                        Ok(Ps::Seq(s))
                    }
                    p @ Ps::Prop(_) => Ok(p),
                }
            } else {
                Err(expr_err)
            }
        }
    }
}

fn parse_repeat_suffix(cur: &mut Cursor, seq: SeqExpr) -> Result<SeqExpr, ParseError> {
    // `[* lo ]` / `[* lo : hi ]` / `[*]`
    if cur.at_punct(Punct::LBracket) && cur.peek_n(1) == &Tok::Punct(Punct::Star) {
        cur.bump();
        cur.bump();
        if cur.eat_punct(Punct::RBracket) {
            return Ok(SeqExpr::Repeat {
                seq: Box::new(seq),
                lo: 0,
                hi: DelayBound::Unbounded,
            });
        }
        let lo = expect_small_number(cur, "repetition count")?;
        let hi = if cur.eat_punct(Punct::Colon) {
            if cur.eat_punct(Punct::Dollar) {
                DelayBound::Unbounded
            } else {
                DelayBound::Finite(expect_small_number(cur, "repetition upper bound")?)
            }
        } else {
            DelayBound::Finite(lo)
        };
        cur.expect_punct(Punct::RBracket, "']' of repetition")?;
        return Ok(SeqExpr::Repeat {
            seq: Box::new(seq),
            lo,
            hi,
        });
    }
    Ok(seq)
}

/// Parses a full assertion statement:
/// `[label :] assert property ( [@(edge clk)] [disable iff (e)] prop ) ;`
pub fn parse_assertion(cur: &mut Cursor) -> Result<Assertion, ParseError> {
    let label = match (cur.peek().clone(), cur.peek_n(1).clone()) {
        (Tok::Ident(name), Tok::Punct(Punct::Colon)) => {
            cur.bump();
            cur.bump();
            Some(name)
        }
        _ => None,
    };
    if !(cur.eat_kw(Kw::Assert) || cur.eat_kw(Kw::Assume) || cur.eat_kw(Kw::Cover)) {
        return Err(cur.err("expected 'assert'"));
    }
    cur.expect_kw(Kw::Property, "'property'")?;
    cur.expect_punct(Punct::LParen, "'(' of assert property")?;
    let clock = if cur.eat_punct(Punct::At) {
        cur.expect_punct(Punct::LParen, "'(' of clocking event")?;
        let posedge = if cur.eat_kw(Kw::Posedge) {
            true
        } else if cur.eat_kw(Kw::Negedge) {
            false
        } else {
            return Err(cur.err("expected posedge/negedge"));
        };
        let signal = cur.expect_ident("clock signal")?;
        cur.expect_punct(Punct::RParen, "')' of clocking event")?;
        ClockSpec { signal, posedge }
    } else {
        // Unclocked assertions default to `posedge clk` — the testbench
        // convention across all FVEval collateral.
        ClockSpec::posedge("clk")
    };
    let disable = if cur.at_kw(Kw::Disable) {
        cur.bump();
        cur.expect_kw(Kw::Iff, "'iff' after disable")?;
        cur.expect_punct(Punct::LParen, "'(' of disable iff")?;
        let e = parse_expr(cur)?;
        cur.expect_punct(Punct::RParen, "')' of disable iff")?;
        Some(e)
    } else {
        None
    };
    let body = parse_property(cur)?;
    cur.expect_punct(Punct::RParen, "')' closing assert property")?;
    // The trailing semicolon is conventionally present; tolerate absence.
    cur.eat_punct(Punct::Semi);
    let mut a = Assertion::new(clock, body);
    a.label = label;
    a.disable = disable;
    Ok(a)
}

#[cfg(test)]
mod tests {
    use crate::parse_assertion_str;
    use sv_ast::{print_assertion, print_property, DelayBound, PropExpr, SeqExpr};

    fn body(src: &str) -> PropExpr {
        parse_assertion_str(src).unwrap().body
    }

    #[test]
    fn paper_reference_assertions_parse() {
        // Drawn verbatim from the paper's appendix.
        let cases = [
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) (fifo_empty && rd_pop) !== 1'b1);",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) (rd_pop && (fifo_out_data != rd_data)) !== 1'b1);",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) !fifo_empty |-> strong(##[0:$] rd_pop));",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));",
            "assert property(@(posedge clk) (sig_G && sig_J) |-> ##2 ((^sig_G === 1'b1) && &sig_B));",
            "assert property(@(posedge clk) (sig_G !== 1'b1) |-> ##4 sig_J);",
            "assert property(@(posedge clk) ((sig_D || ^sig_H) && sig_F));",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) !$onehot0({hold,busy,cont_gnt}) !== 1'b1);",
            "assert property (@(posedge clk) disable iff (tb_reset) (!busy && |tb_req && (tb_gnt == 'd0)) !== 1'b1);",
            "assert property (@(posedge clk) disable iff (!reset_) (fsm_state == 2'b00) |-> ##1 fsm_state == 2'b10);",
            "assert property(@(posedge clk) (|sig_C || (sig_D !== sig_A )) |=> s_eventually(sig_F));",
            "assert property(@(posedge clk) ((sig_J < (sig_B == (sig_C ^ ~|sig_H))) == ((|sig_A === !sig_J) || sig_B)));",
            "assert property (@(posedge clk) (sig_D || ($countones(sig_H) % 2 == 1)) |-> sig_F);",
            "assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> ##[1:$] rd_pop);",
            "asrt_wr: assert property (@(posedge clk) disable iff (tb_reset) $rose(fsm_out == S0) |-> ##1 (in_A_reg != in_B_reg));",
            "assert property (@(posedge clk) disable iff (tb_reset) $rose(state == S2) |-> (a == b) until (state == S0));",
            "assert property (@(posedge clk) disable iff (tb_reset) prev_data_valid && out_vld |-> ##[1:6] (out_data !== 'd0));",
        ];
        for c in cases {
            let a = parse_assertion_str(c).unwrap_or_else(|e| panic!("{c}: {e}"));
            // Round-trip: the printed form re-parses to the same tree.
            let printed = print_assertion(&a);
            let again = parse_assertion_str(&printed)
                .unwrap_or_else(|e| panic!("reprint of {c}: {e}\n{printed}"));
            assert_eq!(a, again, "round trip of {c}");
        }
    }

    #[test]
    fn implication_shapes() {
        let b = body("assert property (@(posedge clk) a |-> ##2 b);");
        match b {
            PropExpr::Implication {
                non_overlap: false,
                cons,
                ..
            } => match *cons {
                PropExpr::Seq(SeqExpr::Delay {
                    lhs: None,
                    lo: 2,
                    hi,
                    ..
                }) => {
                    assert_eq!(hi, DelayBound::Finite(2));
                }
                other => panic!("bad consequent {other:?}"),
            },
            other => panic!("bad shape {other:?}"),
        }
    }

    #[test]
    fn nonoverlap_implication() {
        let b = body("assert property (@(posedge clk) a |=> b);");
        assert!(matches!(
            b,
            PropExpr::Implication {
                non_overlap: true,
                ..
            }
        ));
    }

    #[test]
    fn strong_weak_markers() {
        assert!(matches!(
            body("assert property (@(posedge clk) strong(##[1:$] a));"),
            PropExpr::Strong(_)
        ));
        assert!(matches!(
            body("assert property (@(posedge clk) weak(a ##1 b));"),
            PropExpr::Weak(_)
        ));
    }

    #[test]
    fn sequence_vs_property_parens() {
        // (a |-> b) and (c |-> d) : property conjunction.
        let b = body("assert property (@(posedge clk) (a |-> b) and (c |-> d));");
        assert!(matches!(b, PropExpr::And(..)));
        // (a && b) ##1 c : paren expr inside a sequence.
        let b = body("assert property (@(posedge clk) (a && b) ##1 c);");
        assert!(matches!(b, PropExpr::Seq(SeqExpr::Delay { .. })));
    }

    #[test]
    fn repetition_suffix() {
        let b = body("assert property (@(posedge clk) a[*3] |-> b);");
        match b {
            PropExpr::Implication { ante, .. } => {
                assert!(matches!(ante, SeqExpr::Repeat { lo: 3, .. }));
            }
            other => panic!("bad shape {other:?}"),
        }
        let b = body("assert property (@(posedge clk) a[*1:$] |-> b);");
        match b {
            PropExpr::Implication { ante, .. } => match ante {
                SeqExpr::Repeat { hi, .. } => assert_eq!(hi, DelayBound::Unbounded),
                other => panic!("bad ante {other:?}"),
            },
            other => panic!("bad shape {other:?}"),
        }
    }

    #[test]
    fn throughout_parses() {
        let b = body("assert property (@(posedge clk) busy throughout (a ##2 b));");
        assert!(matches!(b, PropExpr::Seq(SeqExpr::Throughout(..))));
    }

    #[test]
    fn delay_range_validation() {
        assert!(parse_assertion_str("assert property (@(posedge clk) a ##[3:1] b);").is_err());
    }

    #[test]
    fn bad_syntax_examples_fail() {
        // From the paper: invalid operator, double parens, stray tokens.
        for bad in [
            "assert property (@(posedge clk) a |-> eventually(b));",
            "assert property (@(posedge clk) a |-> ##[1:) b);",
            "assert property (@(posedge clk) a |- > b);",
            "assert property (@(posedge clk) (a && ) b);",
            "assert property @(posedge clk) a;",
        ] {
            assert!(parse_assertion_str(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn print_parse_fixpoint_for_props() {
        let srcs = [
            "assert property (@(posedge clk) a ##1 b ##[2:4] c |-> d);",
            "assert property (@(posedge clk) not ((a) and (b ##1 c)));",
            "assert property (@(posedge clk) a |-> b until c);",
        ];
        for s in srcs {
            let p1 = parse_assertion_str(s).unwrap();
            let printed = print_property(&p1.body);
            let wrapped = format!("assert property (@(posedge clk) {printed});");
            let p2 = parse_assertion_str(&wrapped).unwrap();
            assert_eq!(p1.body, p2.body, "fixpoint for {s}");
        }
    }
}
