//! Elaboration of the SystemVerilog subset into a flat word-level
//! netlist, plus bit-blasting into AIG time frames and a cycle-accurate
//! reference simulator.
//!
//! This crate is the "synthesis front-end" substitute for the commercial
//! formal tool's elaboration step:
//!
//! 1. [`elaborate`] flattens a parsed design (parameters, generate
//!    loops, hierarchy) into a [`Netlist`] of *atoms* — inputs,
//!    registers, and combinational definitions at word level.
//! 2. [`FrameExpander`] instantiates the netlist's combinational logic
//!    into an [`fv_aig::Aig`] once per clock cycle; `fv-core` builds BMC
//!    and k-induction queries on top.
//! 3. [`Simulator`] interprets the same netlist directly; property tests
//!    check it against the bit-blasted form bit-for-bit.
//!
//! # 2-state semantics
//!
//! Everything is 0/1 (no X/Z): `===` behaves as `==`, undriven bits
//! become free inputs (cut points), and registers start from their reset
//! values with the reset input held deasserted (the standard formal
//! setup after a reset sequence). See the repository's `ARCHITECTURE.md`
//! for where this crate sits in the evaluation spine.

mod driver;
mod elaborate;
mod frame;
mod netexpr;
mod netlist;
mod sim;

pub use driver::{
    elaborate_design_driver, elaborate_design_with_frontends, Frontend, JsonFrontend, SvFrontend,
};
pub use elaborate::{
    elaborate, elaborate_design, elaborate_with_extras, ElabError, ElaboratedDesign, Fragment,
};
pub use frame::{FrameExpander, FrameValues};
pub use netexpr::{Nx, NxBin, NxRed};
pub use netlist::{AtomDef, AtomId, AtomKind, NetBinding, Netlist, Seg};
pub use sim::{SimError, Simulator};
