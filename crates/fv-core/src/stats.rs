//! Work counters describing how a formal query was discharged.

/// Counters for one prover invocation (or an aggregate over many).
///
/// The incremental core answers each query by the cheapest applicable
/// layer, in order:
///
/// 1. **constant folding / structural hashing** while the monitor is
///    built (free — a query whose target folds to a constant is counted
///    under `ternary_kills`, since three-valued propagation subsumes
///    it),
/// 2. **ternary simulation** (`ternary_kills`): the target is constant
///    under every input assignment, so the SAT query is decided without
///    the solver,
/// 3. **random simulation** (`sim_kills`): 64-way bit-parallel patterns
///    found a concrete witness, so a falsification query is SAT without
///    the solver,
/// 4. **SAT** (`sat_calls`): everything else goes to the CDCL solver;
///    `solver_reuse_hits` counts the calls that were answered by a
///    solver already warmed by a previous query of the same
///    equivalence check / proof (learned clauses and variable
///    activities carry over instead of being rebuilt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Queries discharged by the CDCL SAT solver.
    pub sat_calls: u64,
    /// Falsification queries killed by random simulation (a witness
    /// pattern was found before any SAT call).
    pub sim_kills: u64,
    /// Queries killed by ternary simulation / constant folding (the
    /// target was provably constant without search).
    pub ternary_kills: u64,
    /// SAT calls served by a reused (already-warmed) solver instead of
    /// a freshly built one.
    pub solver_reuse_hits: u64,
}

impl ProverStats {
    /// Total queries decided across all layers.
    pub fn queries(&self) -> u64 {
        self.sat_calls + self.sim_kills + self.ternary_kills
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &ProverStats) {
        self.sat_calls += other.sat_calls;
        self.sim_kills += other.sim_kills;
        self.ternary_kills += other.ternary_kills;
        self.solver_reuse_hits += other.solver_reuse_hits;
    }
}

impl std::ops::AddAssign for ProverStats {
    fn add_assign(&mut self, rhs: ProverStats) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ProverStats {
            sat_calls: 1,
            sim_kills: 2,
            ternary_kills: 3,
            solver_reuse_hits: 0,
        };
        a += ProverStats {
            sat_calls: 10,
            sim_kills: 20,
            ternary_kills: 30,
            solver_reuse_hits: 5,
        };
        assert_eq!(a.sat_calls, 11);
        assert_eq!(a.sim_kills, 22);
        assert_eq!(a.ternary_kills, 33);
        assert_eq!(a.solver_reuse_hits, 5);
        assert_eq!(a.queries(), 66);
    }
}
