//! Approximate tokenization.
//!
//! The paper measures prompt/solution lengths with the Llama-3
//! tokenizer; this reproduction substitutes a byte-pair-style
//! approximation (alphanumeric runs count one token per ~4 characters,
//! punctuation one each), which preserves the *shape* of the length
//! distributions in Figures 2–4.

/// Splits text into lexical code tokens (identifiers, numbers, one
/// token per operator/punctuation char). Used by BLEU.
pub fn code_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '$' {
            cur.push(ch);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() {
                out.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Approximate subword token count (Llama-3 tokenizer substitute).
///
/// # Examples
///
/// ```
/// use fveval_core::token_count;
/// assert!(token_count("assert property (a && b);") >= 8);
/// assert_eq!(token_count(""), 0);
/// ```
pub fn token_count(text: &str) -> usize {
    let mut count = 0usize;
    let mut run = 0usize;
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            run += 1;
        } else {
            count += run.div_ceil(4);
            run = 0;
            if !ch.is_whitespace() {
                count += 1;
            }
        }
    }
    count + run.div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_tokens_split_operators() {
        assert_eq!(
            code_tokens("a |-> ##2 b;"),
            vec!["a", "|", "-", ">", "#", "#", "2", "b", ";"]
        );
        assert_eq!(code_tokens("$onehot0(x)"), vec!["$onehot0", "(", "x", ")"]);
    }

    #[test]
    fn token_count_scales_with_length() {
        let short = token_count("wr_push |-> rd_pop");
        let long =
            token_count("wr_push |-> strong(##[0:$] rd_pop) && another_long_signal_name == 4'hF");
        assert!(long > short);
        assert!(short > 3);
    }

    #[test]
    fn token_count_handles_identifier_runs() {
        // 8-char identifier ~ 2 subword tokens.
        assert_eq!(token_count("abcdefgh"), 2);
        assert_eq!(token_count("ab"), 1);
        assert_eq!(token_count("a b"), 2);
    }
}
