//! Pretty-printer: renders ASTs back to concrete SystemVerilog syntax.
//!
//! The printer inserts parentheses from the same precedence table the
//! parser uses, so `print → parse → print` is a fixpoint (covered by
//! property tests in `sv-parser`).

use crate::expr::{BinaryOp, Expr, Literal, UnaryOp};
use crate::module::{EdgeKind, LValue, Module, ModuleItem, NetKind, PortDir, Range, Stmt};
use crate::property::{Assertion, DelayBound, PropExpr, SeqExpr};
use std::fmt::Write as _;

fn unary_str(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::LogNot => "!",
        UnaryOp::BitNot => "~",
        UnaryOp::Neg => "-",
        UnaryOp::Pos => "+",
        UnaryOp::RedAnd => "&",
        UnaryOp::RedOr => "|",
        UnaryOp::RedXor => "^",
        UnaryOp::RedNand => "~&",
        UnaryOp::RedNor => "~|",
        UnaryOp::RedXnor => "~^",
    }
}

fn binary_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::LogAnd => "&&",
        BinaryOp::LogOr => "||",
        BinaryOp::BitAnd => "&",
        BinaryOp::BitOr => "|",
        BinaryOp::BitXor => "^",
        BinaryOp::BitXnor => "~^",
        BinaryOp::Eq => "==",
        BinaryOp::Neq => "!=",
        BinaryOp::CaseEq => "===",
        BinaryOp::CaseNeq => "!==",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
        BinaryOp::AShl => "<<<",
        BinaryOp::AShr => ">>>",
    }
}

/// Binding strength of a binary operator; higher binds tighter.
/// Mirrored by the Pratt parser in `sv-parser`.
pub(crate) fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 11,
        BinaryOp::Add | BinaryOp::Sub => 10,
        BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr => 9,
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 8,
        BinaryOp::Eq | BinaryOp::Neq | BinaryOp::CaseEq | BinaryOp::CaseNeq => 7,
        BinaryOp::BitAnd => 6,
        BinaryOp::BitXor | BinaryOp::BitXnor => 5,
        BinaryOp::BitOr => 4,
        BinaryOp::LogAnd => 3,
        BinaryOp::LogOr => 2,
    }
}

fn print_literal(lit: &Literal) -> String {
    match lit {
        Literal::Int { width, value, base } => {
            let mut s = String::new();
            if let Some(w) = width {
                let _ = write!(s, "{w}");
            }
            match base {
                Some(b) => {
                    let _ = match b {
                        'b' => write!(s, "'b{value:b}"),
                        'o' => write!(s, "'o{value:o}"),
                        'h' => write!(s, "'h{value:x}"),
                        _ => write!(s, "'d{value}"),
                    };
                }
                None => {
                    let _ = write!(s, "{value}");
                }
            }
            s
        }
        Literal::Fill(true) => "'1".to_string(),
        Literal::Fill(false) => "'0".to_string(),
    }
}

fn print_expr_prec(e: &Expr, parent: u8, out: &mut String) {
    match e {
        Expr::Ident(s) => out.push_str(s),
        Expr::Literal(l) => out.push_str(&print_literal(l)),
        Expr::Unary(op, inner) => {
            out.push_str(unary_str(*op));
            // Unary binds tighter than all binaries; parenthesize any
            // non-primary operand.
            match inner.as_ref() {
                Expr::Ident(_)
                | Expr::Literal(_)
                | Expr::Concat(_)
                | Expr::Replicate(..)
                | Expr::SysCall(..)
                | Expr::Index(..)
                | Expr::Slice(..) => print_expr_prec(inner, 12, out),
                _ => {
                    out.push('(');
                    print_expr_prec(inner, 0, out);
                    out.push(')');
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let p = precedence(*op);
            let need = p <= parent;
            // Left-associative: the left child may share our level.
            if p < parent {
                out.push('(');
            }
            print_expr_prec(a, p, out);
            out.push(' ');
            out.push_str(binary_str(*op));
            out.push(' ');
            // Right child needs a strictly higher level.
            let _ = need;
            print_expr_prec(b, p + 1, out);
            if p < parent {
                out.push(')');
            }
        }
        Expr::Ternary(c, t, f) => {
            let p = 1;
            if p < parent {
                out.push('(');
            }
            print_expr_prec(c, p + 1, out);
            out.push_str(" ? ");
            print_expr_prec(t, p, out);
            out.push_str(" : ");
            print_expr_prec(f, p, out);
            if p < parent {
                out.push(')');
            }
        }
        Expr::Concat(es) => {
            out.push('{');
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr_prec(x, 0, out);
            }
            out.push('}');
        }
        Expr::Replicate(n, x) => {
            out.push('{');
            print_expr_prec(n, 12, out);
            out.push('{');
            print_expr_prec(x, 0, out);
            out.push_str("}}");
        }
        Expr::Index(b, i) => {
            print_expr_prec(b, 12, out);
            out.push('[');
            print_expr_prec(i, 0, out);
            out.push(']');
        }
        Expr::Slice(b, h, l) => {
            print_expr_prec(b, 12, out);
            out.push('[');
            print_expr_prec(h, 0, out);
            out.push(':');
            print_expr_prec(l, 0, out);
            out.push(']');
        }
        Expr::SysCall(f, args) => {
            out.push('$');
            out.push_str(f.name());
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr_prec(a, 0, out);
            }
            out.push(')');
        }
    }
}

/// Renders an expression to SystemVerilog concrete syntax.
///
/// # Examples
///
/// ```
/// use sv_ast::{print_expr, Expr};
/// let e = Expr::ident("a").land(Expr::ident("b"));
/// assert_eq!(print_expr(&e), "a && b");
/// ```
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    print_expr_prec(e, 0, &mut s);
    s
}

fn delay_str(lo: u32, hi: DelayBound) -> String {
    match hi {
        DelayBound::Finite(h) if h == lo => format!("##{lo}"),
        DelayBound::Finite(h) => format!("##[{lo}:{h}]"),
        DelayBound::Unbounded => format!("##[{lo}:$]"),
    }
}

fn print_seq_inner(s: &SeqExpr, out: &mut String) {
    match s {
        SeqExpr::Expr(e) => {
            // Boolean operands of sequence operators print as-is; the
            // parser treats sequence operators at lower precedence.
            out.push_str(&print_expr(e));
        }
        SeqExpr::Delay { lhs, lo, hi, rhs } => {
            if let Some(l) = lhs {
                print_seq_atom(l, out);
                out.push(' ');
            }
            out.push_str(&delay_str(*lo, *hi));
            out.push(' ');
            print_seq_atom(rhs, out);
        }
        SeqExpr::Repeat { seq, lo, hi } => {
            print_seq_atom(seq, out);
            match hi {
                DelayBound::Finite(h) if h == lo => {
                    let _ = write!(out, "[*{lo}]");
                }
                DelayBound::Finite(h) => {
                    let _ = write!(out, "[*{lo}:{h}]");
                }
                DelayBound::Unbounded => {
                    let _ = write!(out, "[*{lo}:$]");
                }
            }
        }
        SeqExpr::And(a, b) => {
            print_seq_atom(a, out);
            out.push_str(" and ");
            print_seq_atom(b, out);
        }
        SeqExpr::Or(a, b) => {
            print_seq_atom(a, out);
            out.push_str(" or ");
            print_seq_atom(b, out);
        }
        SeqExpr::Throughout(e, seq) => {
            out.push_str(&print_expr(e));
            out.push_str(" throughout ");
            print_seq_atom(seq, out);
        }
    }
}

fn print_seq_atom(s: &SeqExpr, out: &mut String) {
    match s {
        SeqExpr::Expr(_) => print_seq_inner(s, out),
        _ => {
            out.push('(');
            print_seq_inner(s, out);
            out.push(')');
        }
    }
}

/// Renders a sequence expression.
pub fn print_seq(s: &SeqExpr) -> String {
    let mut out = String::new();
    print_seq_inner(s, &mut out);
    out
}

fn print_prop_inner(p: &PropExpr, out: &mut String) {
    match p {
        PropExpr::Seq(s) => print_seq_inner(s, out),
        PropExpr::Strong(s) => {
            out.push_str("strong(");
            print_seq_inner(s, out);
            out.push(')');
        }
        PropExpr::Weak(s) => {
            out.push_str("weak(");
            print_seq_inner(s, out);
            out.push(')');
        }
        PropExpr::Not(inner) => {
            out.push_str("not (");
            print_prop_inner(inner, out);
            out.push(')');
        }
        PropExpr::And(a, b) => {
            print_prop_atom(a, out);
            out.push_str(" and ");
            print_prop_atom(b, out);
        }
        PropExpr::Or(a, b) => {
            print_prop_atom(a, out);
            out.push_str(" or ");
            print_prop_atom(b, out);
        }
        PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } => {
            print_seq_atom(ante, out);
            out.push_str(if *non_overlap { " |=> " } else { " |-> " });
            print_prop_atom(cons, out);
        }
        PropExpr::SEventually(inner) => {
            out.push_str("s_eventually (");
            print_prop_inner(inner, out);
            out.push(')');
        }
        PropExpr::Always(inner) => {
            out.push_str("always (");
            print_prop_inner(inner, out);
            out.push(')');
        }
        PropExpr::Nexttime(inner) => {
            out.push_str("nexttime (");
            print_prop_inner(inner, out);
            out.push(')');
        }
        PropExpr::Until { strong, lhs, rhs } => {
            print_prop_atom(lhs, out);
            out.push_str(if *strong { " s_until " } else { " until " });
            print_prop_atom(rhs, out);
        }
        PropExpr::IfElse { cond, then, alt } => {
            out.push_str("if (");
            out.push_str(&print_expr(cond));
            out.push_str(") ");
            print_prop_atom(then, out);
            if let Some(a) = alt {
                out.push_str(" else ");
                print_prop_atom(a, out);
            }
        }
    }
}

fn print_prop_atom(p: &PropExpr, out: &mut String) {
    match p {
        PropExpr::Seq(SeqExpr::Expr(_)) | PropExpr::Strong(_) | PropExpr::Weak(_) => {
            print_prop_inner(p, out)
        }
        _ => {
            out.push('(');
            print_prop_inner(p, out);
            out.push(')');
        }
    }
}

/// Renders a property expression.
pub fn print_property(p: &PropExpr) -> String {
    let mut out = String::new();
    print_prop_inner(p, &mut out);
    out
}

/// Renders a full `assert property (...)` statement.
///
/// # Examples
///
/// ```
/// use sv_ast::{print_assertion, Assertion, ClockSpec, Expr, PropExpr};
/// let a = Assertion::new(ClockSpec::posedge("clk"), PropExpr::expr(Expr::ident("ok")))
///     .with_label("asrt");
/// assert!(print_assertion(&a).starts_with("asrt: assert property"));
/// ```
pub fn print_assertion(a: &Assertion) -> String {
    let mut out = String::new();
    if let Some(l) = &a.label {
        let _ = write!(out, "{l}: ");
    }
    out.push_str("assert property (@(");
    out.push_str(if a.clock.posedge {
        "posedge "
    } else {
        "negedge "
    });
    out.push_str(&a.clock.signal);
    out.push(')');
    if let Some(d) = &a.disable {
        out.push_str(" disable iff (");
        out.push_str(&print_expr(d));
        out.push(')');
    }
    out.push(' ');
    out.push_str(&print_property(&a.body));
    out.push_str(");");
    out
}

fn print_range(r: &Range) -> String {
    format!("[{}:{}]", print_expr(&r.msb), print_expr(&r.lsb))
}

fn indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Ident(s) => s.clone(),
        LValue::Index(s, i) => format!("{s}[{}]", print_expr(i)),
        LValue::Slice(s, h, l) => format!("{s}[{}:{}]", print_expr(h), print_expr(l)),
        LValue::Concat(ls) => {
            let inner: Vec<String> = ls.iter().map(print_lvalue).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Block(stmts) => {
            indent(out, level);
            out.push_str("begin\n");
            for st in stmts {
                print_stmt(st, level + 1, out);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::If { cond, then, alt } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) ", print_expr(cond));
            print_stmt(then, level + 1, out);
            if let Some(a) = alt {
                indent(out, level);
                out.push_str("else\n");
                print_stmt(a, level + 1, out);
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
        } => {
            indent(out, level);
            let _ = writeln!(out, "case ({})", print_expr(subject));
            for (labels, body) in arms {
                indent(out, level + 1);
                let ls: Vec<String> = labels.iter().map(print_expr).collect();
                let _ = writeln!(out, "{}:", ls.join(", "));
                print_stmt(body, level + 2, out);
            }
            if let Some(d) = default {
                indent(out, level + 1);
                out.push_str("default:\n");
                print_stmt(d, level + 2, out);
            }
            indent(out, level);
            out.push_str("endcase\n");
        }
        Stmt::NonBlocking(lv, e) => {
            indent(out, level);
            let _ = writeln!(out, "{} <= {};", print_lvalue(lv), print_expr(e));
        }
        Stmt::Blocking(lv, e) => {
            indent(out, level);
            let _ = writeln!(out, "{} = {};", print_lvalue(lv), print_expr(e));
        }
        Stmt::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
    }
}

fn print_item(item: &ModuleItem, level: usize, out: &mut String) {
    match item {
        ModuleItem::Param(p) => {
            indent(out, level);
            let kw = if p.local { "localparam" } else { "parameter" };
            let _ = writeln!(out, "{kw} {} = {};", p.name, print_expr(&p.value));
        }
        ModuleItem::Port(p) => {
            indent(out, level);
            let dir = match p.dir {
                PortDir::Input => "input",
                PortDir::Output => "output",
                PortDir::Inout => "inout",
            };
            let reg = if p.is_reg { " reg" } else { "" };
            let rng = p.range.as_ref().map(print_range).unwrap_or_default();
            let sep = if rng.is_empty() { "" } else { " " };
            let _ = writeln!(out, "{dir}{reg}{sep}{rng} {};", p.name);
        }
        ModuleItem::Net(n) => {
            indent(out, level);
            let kw = match n.kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
                NetKind::Logic => "logic",
                NetKind::Genvar => "genvar",
            };
            out.push_str(kw);
            for r in &n.packed {
                out.push(' ');
                out.push_str(&print_range(r));
            }
            out.push(' ');
            out.push_str(&n.name);
            for r in &n.unpacked {
                out.push(' ');
                out.push_str(&print_range(r));
            }
            if let Some(init) = &n.init {
                let _ = write!(out, " = {}", print_expr(init));
            }
            out.push_str(";\n");
        }
        ModuleItem::ContAssign(a) => {
            indent(out, level);
            let _ = writeln!(
                out,
                "assign {} = {};",
                print_lvalue(&a.lhs),
                print_expr(&a.rhs)
            );
        }
        ModuleItem::AlwaysFf { events, body } | ModuleItem::AlwaysAt { events, body } => {
            indent(out, level);
            let kw = if matches!(item, ModuleItem::AlwaysFf { .. }) {
                "always_ff"
            } else {
                "always"
            };
            let evs: Vec<String> = events
                .iter()
                .map(|e| {
                    format!(
                        "{} {}",
                        match e.edge {
                            EdgeKind::Pos => "posedge",
                            EdgeKind::Neg => "negedge",
                        },
                        e.signal
                    )
                })
                .collect();
            let _ = writeln!(out, "{kw} @({})", evs.join(" or "));
            print_stmt(body, level + 1, out);
        }
        ModuleItem::AlwaysComb(body) => {
            indent(out, level);
            out.push_str("always_comb\n");
            print_stmt(body, level + 1, out);
        }
        ModuleItem::Instance(inst) => {
            indent(out, level);
            out.push_str(&inst.module);
            if !inst.params.is_empty() {
                let ps: Vec<String> = inst
                    .params
                    .iter()
                    .map(|(n, e)| format!(".{n}({})", print_expr(e)))
                    .collect();
                let _ = write!(out, " #({})", ps.join(", "));
            }
            let _ = writeln!(out, " {} (", inst.name);
            for (i, (n, e)) in inst.conns.iter().enumerate() {
                indent(out, level + 1);
                let comma = if i + 1 < inst.conns.len() { "," } else { "" };
                let _ = writeln!(out, ".{n}({}){comma}", print_expr(e));
            }
            indent(out, level);
            out.push_str(");\n");
        }
        ModuleItem::GenerateFor {
            var,
            init,
            cond,
            step,
            label,
            body,
        } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "for (genvar {var} = {}; {}; {var} = {}) begin : {}",
                print_expr(init),
                print_expr(cond),
                print_expr(step),
                label.as_deref().unwrap_or("gen")
            );
            for it in body {
                print_item(it, level + 1, out);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        ModuleItem::Assertion(a) => {
            indent(out, level);
            out.push_str(&print_assertion(a));
            out.push('\n');
        }
    }
}

/// Renders a full module definition.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = write!(out, "module {} (", m.name);
    for (i, p) in m.port_order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(p);
    }
    out.push_str("\n);\n");
    for p in &m.params {
        let kw = if p.local { "localparam" } else { "parameter" };
        let _ = writeln!(out, "{kw} {} = {};", p.name, print_expr(&p.value));
    }
    for p in &m.ports {
        print_item(&ModuleItem::Port(p.clone()), 0, &mut out);
    }
    for item in &m.items {
        print_item(item, 0, &mut out);
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SysFunc;
    use crate::property::ClockSpec;

    #[test]
    fn expr_precedence_parens() {
        // (a | b) & c must keep parens; a & b | c must not add them around a & b.
        let e = Expr::bin(
            BinaryOp::BitAnd,
            Expr::bin(BinaryOp::BitOr, Expr::ident("a"), Expr::ident("b")),
            Expr::ident("c"),
        );
        assert_eq!(print_expr(&e), "(a | b) & c");
        let e2 = Expr::bin(
            BinaryOp::BitOr,
            Expr::bin(BinaryOp::BitAnd, Expr::ident("a"), Expr::ident("b")),
            Expr::ident("c"),
        );
        assert_eq!(print_expr(&e2), "a & b | c");
    }

    #[test]
    fn unary_of_binary_parenthesizes() {
        let e = Expr::ident("a").land(Expr::ident("b")).lnot();
        assert_eq!(print_expr(&e), "!(a && b)");
        let red = Expr::Unary(UnaryOp::RedOr, Box::new(Expr::ident("req")));
        assert_eq!(print_expr(&red), "|req");
    }

    #[test]
    fn literal_forms() {
        assert_eq!(print_expr(&Expr::num(5)), "5");
        assert_eq!(
            print_expr(&Expr::Literal(Literal::sized_bin(2, 0b10))),
            "2'b10"
        );
        assert_eq!(print_expr(&Expr::Literal(Literal::tick_d(0))), "'d0");
        assert_eq!(print_expr(&Expr::Literal(Literal::Fill(true))), "'1");
    }

    #[test]
    fn syscall_and_concat() {
        let e = Expr::SysCall(
            SysFunc::Onehot0,
            vec![Expr::Concat(vec![
                Expr::ident("a"),
                Expr::ident("b"),
                Expr::ident("c"),
            ])],
        );
        assert_eq!(print_expr(&e), "$onehot0({a, b, c})");
    }

    #[test]
    fn assertion_rendering_matches_paper_style() {
        // wr_push |-> strong(##[0:$] rd_pop)
        let body = PropExpr::Implication {
            ante: SeqExpr::Expr(Expr::ident("wr_push")),
            non_overlap: false,
            cons: Box::new(PropExpr::Strong(SeqExpr::Delay {
                lhs: None,
                lo: 0,
                hi: DelayBound::Unbounded,
                rhs: Box::new(SeqExpr::Expr(Expr::ident("rd_pop"))),
            })),
        };
        let a = Assertion::new(ClockSpec::posedge("clk"), body)
            .with_disable(Expr::ident("tb_reset"))
            .with_label("asrt");
        assert_eq!(
            print_assertion(&a),
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> strong(##[0:$] rd_pop));"
        );
    }

    #[test]
    fn ternary_rendering() {
        let e = Expr::Ternary(
            Box::new(Expr::ident("sel")),
            Box::new(Expr::ident("a")),
            Box::new(Expr::ident("b")),
        );
        assert_eq!(print_expr(&e), "sel ? a : b");
    }

    #[test]
    fn delay_forms() {
        assert_eq!(delay_str(2, DelayBound::Finite(2)), "##2");
        assert_eq!(delay_str(1, DelayBound::Finite(4)), "##[1:4]");
        assert_eq!(delay_str(0, DelayBound::Unbounded), "##[0:$]");
    }
}
