//! Property-based tests over the whole stack (proptest).

use fveval_repro::prelude::*;
use proptest::prelude::*;
use sv_ast::{print_assertion, print_expr, BinaryOp, Expr, UnaryOp};

/// Strategy producing well-formed expressions over a fixed signal set.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("x"), Just("y")].prop_map(Expr::ident),
        (0u128..16).prop_map(Expr::num),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(l, r, op)| { Expr::bin(op, l, r) }),
            (inner.clone(), arb_unop()).prop_map(|(e, op)| Expr::Unary(op, Box::new(e))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| { Expr::Ternary(Box::new(c), Box::new(t), Box::new(e)) }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::LogAnd),
        Just(BinaryOp::LogOr),
        Just(BinaryOp::BitAnd),
        Just(BinaryOp::BitOr),
        Just(BinaryOp::BitXor),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Shl),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::LogNot),
        Just(UnaryOp::BitNot),
        Just(UnaryOp::RedOr),
        Just(UnaryOp::RedAnd),
        Just(UnaryOp::RedXor),
    ]
}

fn table() -> SignalTable {
    [("a", 1u32), ("b", 1), ("x", 4), ("y", 4)]
        .into_iter()
        .collect()
}

/// The fveval-gen family registry, indexed by the proptest sweeps.
const GEN_FAMILIES: [&str; 6] = ["fifo", "arbiter", "handshake", "gray", "shift", "crc"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print -> parse -> print is a fixpoint for random expressions.
    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = print_expr(&e);
        let parsed = sv_parser::parse_expr_str(&printed)
            .unwrap_or_else(|err| panic!("{printed}: {err}"));
        prop_assert_eq!(print_expr(&parsed), printed);
    }

    /// Every random expression is formally equivalent to itself when
    /// wrapped as an assertion body.
    #[test]
    fn equivalence_is_reflexive(e in arb_expr()) {
        let src = format!("assert property (@(posedge clk) ({}) !== 1'b1);", print_expr(&e));
        let a = parse_assertion_str(&src).unwrap();
        let out = check_equivalence(&a, &a, &table(), EquivConfig::default()).unwrap();
        prop_assert_eq!(out.verdict, Equivalence::Equivalent);
    }

    /// Negating a boolean body never stays equivalent (and symmetry of
    /// implication directions holds when swapping the operands).
    #[test]
    fn negation_breaks_equivalence(e in arb_expr()) {
        let body = print_expr(&e);
        let pos = parse_assertion_str(
            &format!("assert property (@(posedge clk) ({body}) != 'd0);")).unwrap();
        let neg = parse_assertion_str(
            &format!("assert property (@(posedge clk) ({body}) == 'd0);")).unwrap();
        let ab = check_equivalence(&pos, &neg, &table(), EquivConfig::default()).unwrap();
        prop_assert_ne!(ab.verdict, Equivalence::Equivalent);
        let ba = check_equivalence(&neg, &pos, &table(), EquivConfig::default()).unwrap();
        let mirrored = match ab.verdict {
            Equivalence::RefImpliesCand => Equivalence::CandImpliesRef,
            Equivalence::CandImpliesRef => Equivalence::RefImpliesCand,
            v => v,
        };
        prop_assert_eq!(ba.verdict, mirrored);
    }

    /// The simulator agrees with the assertion-expression compiler: a
    /// random expression evaluated concretely matches the AIG encoding
    /// evaluated on the same values.
    #[test]
    fn expr_compiler_matches_direct_eval(
        e in arb_expr(),
        a in 0u128..2, b in 0u128..2, x in 0u128..16, y in 0u128..16,
    ) {
        use fv_aig::{Aig, AigEvaluator, BitVec};

        // Build the expression over constants by textual substitution:
        // compile with a free env, then evaluate the AIG with the
        // chosen input values.
        let t = table();
        let src = print_expr(&e);
        let parsed = sv_parser::parse_expr_str(&src).unwrap();
        let mut g = Aig::new();
        let mut env = fv_core::FreeTraceEnv::new(&t);
        let bv = match fv_core::compile_expr(&mut g, &parsed, 0, &mut env) {
            Ok(bv) => bv,
            Err(_) => return Ok(()), // e.g. width overflow; out of scope
        };
        // Assign input values in allocation order.
        let mut input_values = Vec::new();
        for (name, _cycle, slot) in env.log() {
            let v = match name.as_str() { "a" => a, "b" => b, "x" => x, _ => y };
            for i in 0..slot.width() {
                input_values.push((v >> i) & 1 == 1);
            }
        }
        let ev = AigEvaluator::combinational(&g, &input_values);
        let got: u128 = bv
            .bits()
            .iter()
            .enumerate()
            .take(127)
            .map(|(i, &bit)| (ev.lit(bit) as u128) << i)
            .sum();
        // Direct evaluation oracle over the same AST.
        let want = eval_oracle(&parsed, a, b, x, y, bv.width() as u32);
        if let Some(want) = want {
            prop_assert_eq!(got, want, "{}", src);
        }
        let _ = BitVec::constant(1, 0);
    }

    /// Random machine-generated assertions always re-parse and
    /// self-equate (the generator's correctness invariant).
    #[test]
    fn machine_generator_roundtrip(seed in 0u64..500) {
        let cases = generate_machine_cases(MachineGenConfig {
            count: 1,
            seed,
            corruption_rate: 0.3,
        });
        let case = &cases[0];
        let parsed = parse_assertion_str(&case.reference_text).unwrap();
        prop_assert_eq!(print_assertion(&parsed), case.reference_text.clone());
        let out = check_equivalence(
            &parsed,
            &case.reference,
            &machine_signal_table(),
            EquivConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(out.verdict, Equivalence::Equivalent);
    }

    /// BLEU bounds and identity.
    #[test]
    fn bleu_properties(e in arb_expr(), f in arb_expr()) {
        let s1 = print_expr(&e);
        let s2 = print_expr(&f);
        let self_score = bleu(&s1, &s1);
        prop_assert!((self_score - 1.0).abs() < 1e-9);
        let cross = bleu(&s1, &s2);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&cross));
    }

    /// pass@k is within [0, 1] and monotone in both c and k.
    #[test]
    fn passk_properties(n in 1u32..12, c_raw in 0u32..12, k_raw in 1u32..12) {
        let c = c_raw.min(n);
        let k = k_raw.min(n);
        let p = pass_at_k(n, c, k);
        prop_assert!((0.0..=1.0).contains(&p));
        if c < n {
            prop_assert!(pass_at_k(n, c + 1, k) >= p - 1e-12);
        }
        if k < n {
            prop_assert!(pass_at_k(n, c, k + 1) >= p - 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Strashing vs. naive evaluation, and counterexample replay.
// ---------------------------------------------------------------------

/// A random boolean operation tree over four named inputs — the "naive
/// builder" reference semantics for the strashed AIG constructor.
#[derive(Debug, Clone)]
enum Bx {
    In(usize),
    Not(Box<Bx>),
    And(Box<Bx>, Box<Bx>),
    Or(Box<Bx>, Box<Bx>),
    Xor(Box<Bx>, Box<Bx>),
    Mux(Box<Bx>, Box<Bx>, Box<Bx>),
}

impl Bx {
    /// Builds the tree through the strashing [`fv_aig::Aig`] builder.
    fn build(&self, g: &mut fv_aig::Aig, inputs: &[fv_aig::AigLit]) -> fv_aig::AigLit {
        match self {
            Bx::In(i) => inputs[*i],
            Bx::Not(a) => !a.build(g, inputs),
            Bx::And(a, b) => {
                let (x, y) = (a.build(g, inputs), b.build(g, inputs));
                g.and(x, y)
            }
            Bx::Or(a, b) => {
                let (x, y) = (a.build(g, inputs), b.build(g, inputs));
                g.or(x, y)
            }
            Bx::Xor(a, b) => {
                let (x, y) = (a.build(g, inputs), b.build(g, inputs));
                g.xor(x, y)
            }
            Bx::Mux(s, t, e) => {
                let (sv, tv, ev) = (s.build(g, inputs), t.build(g, inputs), e.build(g, inputs));
                g.mux(sv, tv, ev)
            }
        }
    }

    /// Naive recursive evaluation — no hashing, no folding.
    fn eval(&self, vals: &[bool]) -> bool {
        match self {
            Bx::In(i) => vals[*i],
            Bx::Not(a) => !a.eval(vals),
            Bx::And(a, b) => a.eval(vals) && b.eval(vals),
            Bx::Or(a, b) => a.eval(vals) || b.eval(vals),
            Bx::Xor(a, b) => a.eval(vals) ^ b.eval(vals),
            Bx::Mux(s, t, e) => {
                if s.eval(vals) {
                    t.eval(vals)
                } else {
                    e.eval(vals)
                }
            }
        }
    }
}

fn arb_bx() -> impl Strategy<Value = Bx> {
    let leaf = (0usize..4).prop_map(Bx::In);
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Bx::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Bx::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Bx::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Bx::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(s, t, e)| Bx::Mux(
                Box::new(s),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Structural hashing and constant folding never change semantics:
    /// for every input assignment, the strashed graph agrees with naive
    /// recursive evaluation — through the scalar evaluator, the 64-way
    /// bit-parallel simulator, and (where it is definite) the ternary
    /// propagator.
    #[test]
    fn strashing_preserves_aig_semantics(t in arb_bx()) {
        use fv_aig::{Aig, AigEvaluator, BitSim, SimSlot, Ternary, TernarySim};

        let mut g = Aig::new();
        let inputs: Vec<fv_aig::AigLit> = (0..4).map(|_| g.input()).collect();
        let root = t.build(&mut g, &inputs);

        // One bit-parallel pass evaluates the whole 4-input truth
        // table: input i's word is the canonical truth-table mask.
        let masks: [u64; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];
        let mut sim = BitSim::new();
        sim.extend(&g, &mut |slot| match slot {
            SimSlot::Input(k) => masks[k as usize],
            SimSlot::Latch(_) => 0,
        });
        let mut tern = TernarySim::new();
        tern.extend(&g, &mut |_| Ternary::Unknown);

        for assignment in 0..16u32 {
            let vals: Vec<bool> = (0..4).map(|i| (assignment >> i) & 1 == 1).collect();
            let want = t.eval(&vals);
            let ev = AigEvaluator::combinational(&g, &vals);
            prop_assert_eq!(ev.lit(root), want, "scalar eval, assignment {}", assignment);
            prop_assert_eq!(
                sim.lit_bit(root, assignment),
                want,
                "bit-parallel sim, assignment {}", assignment
            );
            // Ternary with every input unknown may only answer when the
            // answer is assignment-independent.
            match tern.lit(root) {
                Ternary::Unknown => {}
                known => prop_assert_eq!(known, Ternary::known(want)),
            }
        }
    }

    /// Every BMC counterexample replays to a real violation in the
    /// cycle-accurate `sv-synth` simulator: for random generated FSMs,
    /// drop one successor from a transition assertion, prove it false,
    /// and re-run the returned trace end to end.
    #[test]
    fn bmc_counterexamples_replay_in_simulator(seed in 0u64..24) {
        let case = generate_fsm(&FsmParams {
            n_states: 4,
            n_edges: 5,
            width: 8,
            guard_depth: 1,
            seed,
        });
        let netlist = testbench_netlist(&case);
        let consts: Vec<(String, u32, u128)> = netlist
            .params
            .iter()
            .map(|(n, v)| (n.clone(), 32u32, *v))
            .collect();
        let transitions = match &case.kind {
            fveval_data::DesignKind::Fsm { transitions, .. } => transitions.clone(),
            _ => unreachable!(),
        };
        for (s, succs) in transitions.iter().enumerate() {
            if succs.len() < 2 {
                continue;
            }
            let disj = succs[..succs.len() - 1]
                .iter()
                .map(|t| format!("(fsm_out == S{t})"))
                .collect::<Vec<_>>()
                .join(" || ");
            let src = format!(
                "assert property (@(posedge clk) disable iff (tb_reset) \
                 (fsm_out == S{s}) |-> ##1 ({disj}));"
            );
            let assertion = parse_assertion_str(&src).unwrap();
            let result =
                fv_core::prove(&netlist, &assertion, &consts, ProveConfig::default()).unwrap();
            let ProveResult::Falsified { cex } = result else {
                panic!("dropping a successor must falsify: {src}");
            };
            prop_assert_eq!(
                fv_core::replay_design_cex(
                    &netlist,
                    &assertion,
                    &consts,
                    ProveConfig::default(),
                    &cex
                ),
                Ok(true),
                "counterexample must replay: {}\n{}", src, cex
            );
        }
    }

    /// The `sv_ast::printer` round-trips every module of a generated
    /// fveval-gen suite: parse → print → re-parse yields a structurally
    /// equal module. This guards the split-elaboration path, whose
    /// collateral (designs, testbenches, helper snippets) flows through
    /// the printer when suites are written to disk and re-read.
    #[test]
    fn printer_roundtrips_generated_suite_modules(
        family_idx in 0usize..6,
        seed in 0u64..32,
    ) {
        let family = GEN_FAMILIES[family_idx];
        let suite = generate_suite(&SuiteConfig {
            families: vec![family.to_string()],
            per_family: 1,
            seed,
            ..Default::default()
        });
        for scenario in &suite.scenarios {
            let src = format!("{}\n{}", scenario.design_source, scenario.tb_source);
            let file = parse_source(&src).unwrap();
            for module in &file.modules {
                let printed = sv_ast::print_module(module);
                let reparsed = parse_source(&printed)
                    .unwrap_or_else(|e| panic!("{}: printed module must re-parse: {e}\n{printed}",
                                               module.name));
                let module2 = reparsed
                    .module(&module.name)
                    .unwrap_or_else(|| panic!("printed module keeps its name: {printed}"));
                prop_assert_eq!(
                    module, module2,
                    "parse → print → re-parse must be structurally equal for {} ({} seed {})",
                    &module.name, family, seed
                );
            }
        }
    }

    /// Session determinism: a design evaluated through one long-lived
    /// `ProofSession` produces verdicts identical to fresh per-sample
    /// `prove_with_stats` calls, swept over (seed, family, depth) of
    /// generated scenarios. Proof depth and earliest violating anchor
    /// are semantic, so they must match too.
    #[test]
    fn proof_session_verdicts_match_fresh_prover(
        family_idx in 0usize..6,
        seed in 0u64..16,
        depth in 2u32..5,
    ) {
        let family = GEN_FAMILIES[family_idx];
        let suite = generate_suite(&SuiteConfig {
            families: vec![family.to_string()],
            per_family: 1,
            seed,
            depth: Some(depth),
            ..Default::default()
        });
        for scenario in &suite.scenarios {
            let bound = bind_scenario(scenario).unwrap();
            let mut session =
                ProofSession::open(&bound.netlist, &bound.consts, ProveConfig::default())
                    .unwrap();
            for candidate in &scenario.candidates {
                let assertion = parse_assertion_str(&candidate.sva).unwrap();
                let (fresh, _) = prove_with_stats(
                    &bound.netlist,
                    &assertion,
                    &bound.consts,
                    ProveConfig::default(),
                )
                .unwrap();
                let (via_session, _) = session.check(&assertion).unwrap();
                match (&fresh, &via_session) {
                    (ProveResult::Proven { k: k1 }, ProveResult::Proven { k: k2 }) => {
                        prop_assert_eq!(k1, k2, "{}", &candidate.sva);
                    }
                    (
                        ProveResult::Falsified { cex: c1 },
                        ProveResult::Falsified { cex: c2 },
                    ) => {
                        prop_assert_eq!(c1.anchor, c2.anchor, "{}", &candidate.sva);
                    }
                    (ProveResult::Undetermined, ProveResult::Undetermined) => {}
                    (fresh, via) => prop_assert!(
                        false,
                        "{} ({} seed {} depth {}): fresh {:?} != session {:?}",
                        &candidate.sva, family, seed, depth, fresh, via
                    ),
                }
            }
            let stats = session.stats();
            prop_assert_eq!(stats.sessions_opened, 1);
            prop_assert_eq!(stats.session_checks, scenario.candidates.len() as u64);
        }
    }
}

/// Elaborates a design case's testbench with the DUT bound in — the
/// same binding `compile_design` performs, but yielding the raw netlist
/// the prover APIs take.
fn testbench_netlist(case: &fveval_data::DesignCase) -> sv_synth::Netlist {
    let mut src = case.design_source.clone();
    src.push('\n');
    src.push_str(&case.tb_source);
    let file = parse_source(&src).unwrap();
    let design = file.module(&case.top).unwrap();
    let conns: Vec<(String, sv_ast::Expr)> = design
        .port_order
        .iter()
        .map(|p| (p.clone(), sv_ast::Expr::ident(p.clone())))
        .collect();
    let inst = sv_ast::ModuleItem::Instance(sv_ast::Instance {
        module: case.top.clone(),
        name: "dut".into(),
        params: vec![],
        conns,
    });
    elaborate_with_extras(&file, &case.tb_top, &[inst]).unwrap()
}

/// Direct 2-state evaluation of an expression AST, mirroring the
/// compiler's width rules. Returns `None` for cases whose width rules
/// are context-dependent in ways this oracle does not model.
fn eval_oracle(e: &Expr, a: u128, b: u128, x: u128, y: u128, out_width: u32) -> Option<u128> {
    fn width_of(e: &Expr) -> u32 {
        match e {
            Expr::Ident(n) => match n.as_str() {
                "a" | "b" => 1,
                _ => 4,
            },
            Expr::Literal(sv_ast::Literal::Int { width, value, .. }) => {
                width.unwrap_or_else(|| (128 - value.leading_zeros()).clamp(32, 128))
            }
            Expr::Literal(_) => 32,
            Expr::Unary(op, i) => match op {
                UnaryOp::LogNot
                | UnaryOp::RedOr
                | UnaryOp::RedAnd
                | UnaryOp::RedXor
                | UnaryOp::RedNand
                | UnaryOp::RedNor
                | UnaryOp::RedXnor => 1,
                _ => width_of(i),
            },
            Expr::Binary(op, l, r) => {
                if op.is_comparison() {
                    1
                } else if matches!(
                    op,
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr
                ) {
                    width_of(l)
                } else {
                    width_of(l).max(width_of(r))
                }
            }
            Expr::Ternary(_, t, f) => width_of(t).max(width_of(f)),
            _ => 32,
        }
    }
    fn mask(v: u128, w: u32) -> u128 {
        if w >= 128 {
            v
        } else {
            v & ((1u128 << w) - 1)
        }
    }
    fn go(e: &Expr, a: u128, b: u128, x: u128, y: u128) -> Option<u128> {
        Some(match e {
            Expr::Ident(n) => match n.as_str() {
                "a" => a,
                "b" => b,
                "x" => x,
                _ => y,
            },
            Expr::Literal(sv_ast::Literal::Int { value, .. }) => *value,
            Expr::Literal(_) => return None,
            Expr::Unary(op, i) => {
                let w = width_of(i);
                let v = go(i, a, b, x, y)?;
                match op {
                    UnaryOp::LogNot => u128::from(v == 0),
                    UnaryOp::BitNot => mask(!v, w),
                    UnaryOp::RedOr => u128::from(v != 0),
                    UnaryOp::RedAnd => u128::from(v == mask(u128::MAX, w)),
                    UnaryOp::RedXor => u128::from(v.count_ones() % 2 == 1),
                    _ => return None,
                }
            }
            Expr::Binary(op, l, r) => {
                let w = width_of(l).max(width_of(r));
                let lv = go(l, a, b, x, y)?;
                let rv = go(r, a, b, x, y)?;
                match op {
                    BinaryOp::LogAnd => u128::from(lv != 0 && rv != 0),
                    BinaryOp::LogOr => u128::from(lv != 0 || rv != 0),
                    BinaryOp::BitAnd => lv & rv,
                    BinaryOp::BitOr => lv | rv,
                    BinaryOp::BitXor => lv ^ rv,
                    BinaryOp::Eq => u128::from(lv == rv),
                    BinaryOp::Neq => u128::from(lv != rv),
                    BinaryOp::Lt => u128::from(lv < rv),
                    BinaryOp::Le => u128::from(lv <= rv),
                    BinaryOp::Add => mask(lv.wrapping_add(rv), w),
                    BinaryOp::Sub => mask(lv.wrapping_sub(rv), w),
                    BinaryOp::Shl => {
                        let lw = width_of(l);
                        if rv >= 128 {
                            0
                        } else {
                            mask(lv << rv, lw)
                        }
                    }
                    _ => return None,
                }
            }
            Expr::Ternary(c, t, f) => {
                if go(c, a, b, x, y)? != 0 {
                    go(t, a, b, x, y)?
                } else {
                    go(f, a, b, x, y)?
                }
            }
            _ => return None,
        })
    }
    let v = go(e, a, b, x, y)?;
    Some(mask(v, out_width.min(127)))
}
