//! Integration tests for the Design2SVA flow: generated RTL elaborates,
//! simulates, and its golden assertions are proven; mis-read assertions
//! are falsified with concrete counterexamples.

use fveval_repro::prelude::*;

#[test]
fn sweep_golden_assertions_prove() {
    // A slice of both sweeps, full pipeline: bind design, prove golden.
    let runner = Design2svaRunner::new();
    for case in pipeline_sweep(4, 11).into_iter().chain(fsm_sweep(4, 12)) {
        let bound = compile_design(&case).unwrap_or_else(|e| panic!("{}: {e}", case.id));
        for golden in &case.golden {
            let eval = runner.evaluate_response(&bound, golden);
            assert!(
                eval.syntax && eval.func,
                "{}: golden must prove: {golden}",
                case.id
            );
        }
    }
}

#[test]
fn generated_designs_simulate() {
    for case in pipeline_sweep(3, 21).into_iter().chain(fsm_sweep(3, 22)) {
        let file = parse_source(&case.design_source).expect("generated RTL parses");
        let netlist = elaborate(&file, &case.top).expect("generated RTL elaborates");
        let mut sim = Simulator::new(&netlist).expect("no combinational cycles");
        for cycle in 0..16u32 {
            sim.step(&move |name, _| match name {
                "reset_" => 1,
                _ => u128::from(cycle).wrapping_mul(0x9E37) & 0xFFFF,
            });
        }
        // FSM output must stay within the encoded state range.
        if let fveval_data::DesignKind::Fsm { n_states, .. } = &case.kind {
            let out = sim.read_net("fsm_out").expect("fsm_out readable");
            assert!(
                out < u128::from(*n_states),
                "{}: fsm_out={out} out of range",
                case.id
            );
        }
    }
}

#[test]
fn wrong_depth_pipeline_claim_is_falsified() {
    let case = generate_pipeline(&PipelineParams {
        n_units: 2,
        unit_depths: vec![2, 2],
        width: 8,
        expr_ops: 2,
        seed: 5,
    });
    let file = {
        let mut src = case.design_source.clone();
        src.push('\n');
        src.push_str(&case.tb_source);
        parse_source(&src).unwrap()
    };
    let design = file.module(&case.top).unwrap();
    let conns: Vec<(String, sv_ast::Expr)> = design
        .port_order
        .iter()
        .map(|p| (p.clone(), sv_ast::Expr::ident(p.clone())))
        .collect();
    let inst = sv_ast::ModuleItem::Instance(sv_ast::Instance {
        module: case.top.clone(),
        name: "dut".into(),
        params: vec![],
        conns,
    });
    let netlist = elaborate_with_extras(&file, &case.tb_top, &[inst]).unwrap();
    // Correct depth proves; off-by-one is falsified with a trace.
    let good = parse_assertion_str(
        "assert property (@(posedge clk) disable iff (tb_reset) in_vld |-> ##4 out_vld);",
    )
    .unwrap();
    let bad = parse_assertion_str(
        "assert property (@(posedge clk) disable iff (tb_reset) in_vld |-> ##3 out_vld);",
    )
    .unwrap();
    assert!(prove(&netlist, &good, &[], ProveConfig::default())
        .unwrap()
        .is_proven());
    match prove(&netlist, &bad, &[], ProveConfig::default()).unwrap() {
        ProveResult::Falsified { cex } => {
            assert!(!cex.inputs.is_empty(), "counterexample has stimuli");
        }
        other => panic!("expected falsification, got {other:?}"),
    }
}

#[test]
fn fsm_transition_structure_matches_model_checker() {
    // For every state of a generated FSM: the golden successor-set
    // assertion proves, and any strict subset is falsified (the edges
    // are all reachable and takable).
    let case = generate_fsm(&FsmParams {
        n_states: 4,
        n_edges: 6,
        width: 8,
        guard_depth: 1,
        seed: 33,
    });
    let bound = compile_design(&case).unwrap();
    let runner = Design2svaRunner::new();
    let transitions = match &case.kind {
        fveval_data::DesignKind::Fsm { transitions, .. } => transitions.clone(),
        _ => unreachable!(),
    };
    for (s, succs) in transitions.iter().enumerate() {
        let disj = |list: &[u32]| {
            list.iter()
                .map(|t| format!("(fsm_out == S{t})"))
                .collect::<Vec<_>>()
                .join(" || ")
        };
        let full = format!(
            "assert property (@(posedge clk) disable iff (tb_reset) \
             (fsm_out == S{s}) |-> ##1 ({}));",
            disj(succs)
        );
        let eval = runner.evaluate_response(&bound, &full);
        assert!(eval.func, "state {s}: full successor set proves");
        if succs.len() >= 2 {
            let partial = format!(
                "assert property (@(posedge clk) disable iff (tb_reset) \
                 (fsm_out == S{s}) |-> ##1 ({}));",
                disj(&succs[..succs.len() - 1])
            );
            let eval = runner.evaluate_response(&bound, &partial);
            assert!(
                eval.syntax && !eval.func,
                "state {s}: dropping the else-successor must be falsified"
            );
        }
    }
}
