//! Engine shards: the unit of parallelism and cache affinity in the
//! sharded server.
//!
//! Each [`Shard`] owns a private [`EvalEngine`] fed by one bounded
//! queue and drained by one worker thread. Jobs route to shards by
//! [`shard_of`] over the request's task-content digest
//! ([`crate::TaskSetRef::route_digest`]), so repeated evaluations of
//! the same design always land on the same shard — its
//! `CompiledDesign`/`ProofSession` caches stay hot, and no design
//! state ever migrates across engines. The queue bound is the
//! backpressure surface: a submit that finds `queued + in-flight` at
//! the bound is rejected (`429`) with a [`Shard::retry_after_ms`]
//! hint derived from an EWMA of recent job durations on that shard.

use fveval_core::EvalEngine;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Routes a task-content digest to a shard: `digest mod shards`.
/// A pure function — the same digest maps to the same shard for any
/// fixed shard count, across processes and restarts. `shards` is
/// clamped to at least 1.
pub fn shard_of(digest: u64, shards: usize) -> usize {
    (digest % shards.max(1) as u64) as usize
}

/// One engine shard: a private engine, a bounded job-id queue, its
/// worker's wake signal, and the shard-local traffic counters that
/// `GET /v1/stats` reports per shard.
#[derive(Debug)]
pub struct Shard {
    /// This shard's index (the value [`shard_of`] routes to).
    pub index: usize,
    /// The shard-private engine; only this shard's worker evaluates
    /// on it, so per-design sessions never cross shards.
    pub engine: EvalEngine,
    /// Queued job ids awaiting this shard's worker.
    queue: Mutex<VecDeque<u64>>,
    /// Wakes the worker when work arrives or shutdown begins.
    cv: Condvar,
    /// Bound on `queued + in-flight`; submissions beyond it get `429`.
    queue_depth: usize,
    in_flight: AtomicUsize,
    accepted: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    /// EWMA of job wall-clock durations, in milliseconds.
    ewma_job_ms: AtomicU64,
}

impl Shard {
    /// Builds a shard around its own engine.
    pub fn new(index: usize, engine: EvalEngine, queue_depth: usize) -> Shard {
        Shard {
            index,
            engine,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            queue_depth: queue_depth.max(1),
            in_flight: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            ewma_job_ms: AtomicU64::new(0),
        }
    }

    /// Enqueues a job id unless the shard is at its bound. Returns
    /// `false` (counting the rejection) when `queued + in-flight` is
    /// at the bound — the caller answers `429`.
    pub fn try_enqueue(&self, id: u64) -> bool {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        if queue.len() + self.in_flight.load(Ordering::Acquire) >= self.queue_depth {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        queue.push_back(id);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.cv.notify_one();
        true
    }

    /// Blocks the shard worker until a job id is available (marking it
    /// in-flight) or `shutdown` is set with an empty queue (`None`:
    /// the worker exits).
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<u64> {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        loop {
            if let Some(id) = queue.pop_front() {
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                return Some(id);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = self
                .cv
                .wait_timeout(queue, Duration::from_millis(200))
                .expect("shard queue poisoned")
                .0;
        }
    }

    /// Wakes the worker so it can observe a shutdown request.
    pub fn wake(&self) {
        self.cv.notify_all();
    }

    /// Records a finished job: outcome counter, in-flight release, and
    /// the duration EWMA behind [`Shard::retry_after_ms`].
    pub fn note_finished(&self, ok: bool, elapsed: Duration) {
        let ms = elapsed.as_millis().min(u128::from(u64::MAX)) as u64;
        let old = self.ewma_job_ms.load(Ordering::Relaxed);
        let next = if old == 0 { ms } else { (3 * old + ms) / 4 };
        self.ewma_job_ms.store(next.max(1), Ordering::Relaxed);
        if ok {
            self.served.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// How long a rejected client should wait before retrying, in
    /// milliseconds: one EWMA job duration per occupied slot, floored
    /// at 50 ms (a fresh shard has no history yet).
    pub fn retry_after_ms(&self) -> u64 {
        let ewma = self.ewma_job_ms.load(Ordering::Relaxed).max(50);
        let occupied = self.depth() + self.in_flight();
        ewma.saturating_mul(occupied.max(1) as u64).min(60_000)
    }

    /// Queue position of `id` (0 = next), if it is still queued.
    pub fn position_of(&self, id: u64) -> Option<u64> {
        self.queue
            .lock()
            .expect("shard queue poisoned")
            .iter()
            .position(|&queued| queued == id)
            .map(|p| p as u64)
    }

    /// Currently queued job count.
    pub fn depth(&self) -> usize {
        self.queue.lock().expect("shard queue poisoned").len()
    }

    /// Jobs currently being evaluated (0 or 1: one worker per shard).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Nothing queued and nothing in flight.
    pub fn idle(&self) -> bool {
        self.in_flight() == 0 && self.depth() == 0
    }

    /// Jobs this shard accepted (queued successfully).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Jobs this shard finished successfully.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Jobs this shard finished with an error.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Submissions bounced off the full queue.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The configured `queued + in-flight` bound.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_digest_mod_shards_and_total() {
        for digest in [0u64, 1, 7, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            for shards in 1..=8 {
                let shard = shard_of(digest, shards);
                assert!(shard < shards);
                assert_eq!(shard, (digest % shards as u64) as usize);
                // Pure: recomputing never moves the job.
                assert_eq!(shard, shard_of(digest, shards));
            }
            // Degenerate configs still route somewhere valid.
            assert_eq!(shard_of(digest, 0), 0);
            assert_eq!(shard_of(digest, 1), 0);
        }
    }

    #[test]
    fn queue_bound_rejects_and_recovers() {
        let shard = Shard::new(0, EvalEngine::with_jobs(1), 2);
        assert!(shard.try_enqueue(1));
        assert!(shard.try_enqueue(2));
        assert!(!shard.try_enqueue(3), "bound of 2 rejects the 3rd");
        assert_eq!(shard.rejected(), 1);
        assert_eq!(shard.accepted(), 2);
        // Draining one makes room — but an in-flight job still counts
        // against the bound until it finishes.
        let shutdown = AtomicBool::new(false);
        assert_eq!(shard.pop(&shutdown), Some(1));
        assert_eq!(shard.in_flight(), 1);
        assert!(!shard.try_enqueue(3), "in-flight occupies a slot");
        shard.note_finished(true, Duration::from_millis(8));
        assert!(shard.try_enqueue(3));
        assert_eq!(shard.served(), 1);
        assert_eq!(shard.position_of(2), Some(0));
        assert_eq!(shard.position_of(3), Some(1));
        assert_eq!(shard.position_of(99), None);
        // Shutdown with a drained queue exits the pop loop.
        shutdown.store(true, Ordering::SeqCst);
        assert_eq!(shard.pop(&shutdown), Some(2));
        shard.note_finished(true, Duration::from_millis(8));
        assert_eq!(shard.pop(&shutdown), Some(3));
        shard.note_finished(false, Duration::from_millis(8));
        assert_eq!(shard.pop(&shutdown), None);
        assert!(shard.idle());
        assert_eq!(shard.failed(), 1);
    }

    #[test]
    fn retry_hint_tracks_job_durations() {
        let shard = Shard::new(0, EvalEngine::with_jobs(1), 4);
        // No history: the floor applies.
        assert_eq!(shard.retry_after_ms(), 50);
        let shutdown = AtomicBool::new(false);
        assert!(shard.try_enqueue(1));
        shard.pop(&shutdown);
        shard.note_finished(true, Duration::from_millis(400));
        // One recorded duration, empty shard: hint is one EWMA step.
        assert_eq!(shard.retry_after_ms(), 400);
        // A backlog multiplies the hint by occupied slots.
        assert!(shard.try_enqueue(2));
        assert!(shard.try_enqueue(3));
        assert_eq!(shard.retry_after_ms(), 800);
    }
}
