//! Property tests for histogram shard merge semantics.
//!
//! The metrics registry accumulates latency observations in
//! per-thread shards and merges them on drain. Correctness of every
//! exported total rests on merge being associative and commutative,
//! and on bucket counts conserving the observation count — no matter
//! how observations were split across `(jobs, shards)`.

use fv_trace::metrics::{bucket_of, Histogram, BUCKETS};
use proptest::prelude::*;

/// Builds one histogram from a slice of observations.
fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

/// Deterministically partitions observations across `parts` shards
/// (round-robin offset by `salt`, mimicking work distribution across
/// worker threads).
fn partition(values: &[u64], parts: usize, salt: usize) -> Vec<Vec<u64>> {
    let mut shards = vec![Vec::new(); parts.max(1)];
    for (i, &v) in values.iter().enumerate() {
        shards[(i + salt) % parts.max(1)].push(v);
    }
    shards
}

/// Observation values spanning every interesting bucket: zero, small,
/// bucket-boundary, and huge.
fn obs() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..16,
        (0u32..64).prop_map(|b| 1u64 << b),
        (0u32..63).prop_map(|b| (1u64 << b) + 1),
        0u64..=u64::MAX,
    ]
}

fn obs_vec() -> impl Strategy<Value = Vec<u64>> {
    (0usize..200, obs(), obs(), obs()).prop_map(|(n, a, b, c)| {
        // Cycle three independently-drawn values to length n: cheap
        // variable-length vectors without a dedicated vec strategy.
        [a, b, c].iter().copied().cycle().take(n).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Splitting observations across any (jobs, shards) grid and
    /// merging in any grouping reproduces the single-histogram truth.
    #[test]
    fn sharded_merge_matches_direct_recording(
        values in obs_vec(),
        jobs in 1usize..6,
        shards in 1usize..5,
        salt in 0usize..8,
    ) {
        let direct = hist_of(&values);

        // jobs × shards two-level split, merged bottom-up.
        let mut two_level = Histogram::default();
        for (j, per_job) in partition(&values, jobs, salt).iter().enumerate() {
            let mut job_hist = Histogram::default();
            for shard in partition(per_job, shards, j) {
                job_hist.merge(&hist_of(&shard));
            }
            two_level.merge(&job_hist);
        }
        prop_assert_eq!(&two_level, &direct);

        // Same shards merged flat, in reverse order (commutativity +
        // associativity across groupings).
        let mut flat = Histogram::default();
        let mut all_shards = Vec::new();
        for (j, per_job) in partition(&values, jobs, salt).iter().enumerate() {
            all_shards.extend(partition(per_job, shards, j));
        }
        for shard in all_shards.iter().rev() {
            flat.merge(&hist_of(shard));
        }
        prop_assert_eq!(&flat, &direct);
    }

    /// Bucket counts always sum to the observation count, and every
    /// observation lands in the bucket whose bounds contain it.
    #[test]
    fn bucket_counts_conserve_observations(values in obs_vec()) {
        let hist = hist_of(&values);
        prop_assert_eq!(hist.count, values.len() as u64);
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
        let mut expected = [0u64; BUCKETS];
        for &v in &values {
            expected[bucket_of(v)] += 1;
        }
        prop_assert_eq!(hist.buckets, expected);
    }

    /// merge() commutes pairwise for arbitrary histogram pairs.
    #[test]
    fn merge_commutes(a in obs_vec(), b in obs_vec()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }
}
